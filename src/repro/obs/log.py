"""Structured JSON-lines logging on top of the stdlib ``logging`` stack.

Modules obtain a :class:`StructuredLogger` via :func:`get_logger` and
emit *events* with flat key-value fields::

    _LOG = get_logger("repro.service.executor")
    _LOG.warning("shard.failed", shard=3, attempt=1, error="boom")

Nothing is printed until :func:`configure_logging` installs a handler
on the ``repro`` root logger — until then events cost one
``isEnabledFor`` check (the ``repro`` logger carries a
``NullHandler`` so the stdlib "no handler" fallback never fires).
``configure_logging`` is idempotent: it replaces any handler it
installed earlier, so repeated CLI invocations in one process do not
stack handlers.
"""

from __future__ import annotations

import io
import json
import logging
import sys
import time
import traceback
from typing import IO, Any, Dict, Optional

__all__ = [
    "JsonFormatter",
    "TextFormatter",
    "StructuredLogger",
    "get_logger",
    "configure_logging",
    "reset_logging",
]

ROOT_LOGGER_NAME = "repro"

#: Marker attribute tagging handlers installed by :func:`configure_logging`.
_HANDLER_TAG = "_repro_obs_handler"

_LEVELS: Dict[str, int] = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

# Keep plain `import repro.obs.log` side-effect free apart from this:
# without a NullHandler the stdlib lastResort handler would echo every
# warning+ record to stderr even in processes that never opted in.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


def _record_fields(record: logging.LogRecord) -> Dict[str, Any]:
    fields = getattr(record, "repro_fields", None)
    if isinstance(fields, dict):
        return fields
    return {}


def _iso_utc(created: float) -> str:
    base = time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime(created))
    millis = int((created - int(created)) * 1000)
    return f"{base}.{millis:03d}Z"


class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, event, fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": _iso_utc(record.created),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        for key, value in _record_fields(record).items():
            if key not in payload:
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = "".join(
                traceback.format_exception(*record.exc_info)
            ).rstrip("\n")
        return json.dumps(payload, sort_keys=False, default=str)


class TextFormatter(logging.Formatter):
    """Human-oriented single line: ``ts level logger event k=v ...``."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            _iso_utc(record.created),
            record.levelname.lower(),
            record.name,
            record.getMessage(),
        ]
        for key, value in _record_fields(record).items():
            parts.append(f"{key}={value}")
        line = " ".join(str(part) for part in parts)
        if record.exc_info and record.exc_info[0] is not None:
            line += "\n" + "".join(
                traceback.format_exception(*record.exc_info)
            ).rstrip("\n")
        return line


class StructuredLogger:
    """Thin event-plus-fields facade over a stdlib logger."""

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def name(self) -> str:
        return self._logger.name

    def _emit(
        self,
        level: int,
        event: str,
        fields: Dict[str, Any],
        exc_info: bool,
    ) -> None:
        if not self._logger.isEnabledFor(level):
            return
        self._logger.log(
            level,
            event,
            exc_info=exc_info,
            extra={"repro_fields": fields},
        )

    def debug(self, event: str, **fields: Any) -> None:
        self._emit(logging.DEBUG, event, fields, False)

    def info(self, event: str, **fields: Any) -> None:
        self._emit(logging.INFO, event, fields, False)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit(logging.WARNING, event, fields, False)

    def error(self, event: str, *, exc_info: bool = False,
              **fields: Any) -> None:
        self._emit(logging.ERROR, event, fields, exc_info)


def get_logger(name: str) -> StructuredLogger:
    """The structured logger for ``name`` (child of ``repro``)."""
    if name != ROOT_LOGGER_NAME and not name.startswith(
        ROOT_LOGGER_NAME + "."
    ):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return StructuredLogger(logging.getLogger(name))


def configure_logging(
    *,
    stream: Optional[IO[str]] = None,
    level: str = "info",
    fmt: str = "json",
    logger_name: str = ROOT_LOGGER_NAME,
) -> logging.Handler:
    """Install (or replace) the repro log handler and return it.

    ``fmt`` is ``"json"`` or ``"text"``; ``level`` one of debug /
    info / warning / error.  Events propagate to ``logger_name`` only
    — the stdlib root logger is left alone.
    """
    try:
        level_no = _LEVELS[level.lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(_LEVELS)}"
        ) from None
    if fmt == "json":
        formatter: logging.Formatter = JsonFormatter()
    elif fmt == "text":
        formatter = TextFormatter()
    else:
        raise ValueError(f"unknown log format {fmt!r}; choose json or text")

    logger = logging.getLogger(logger_name)
    reset_logging(logger_name=logger_name)
    handler = logging.StreamHandler(
        stream if stream is not None else sys.stderr
    )
    handler.setFormatter(formatter)
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    logger.setLevel(level_no)
    logger.propagate = False
    return handler


def reset_logging(*, logger_name: str = ROOT_LOGGER_NAME) -> None:
    """Remove handlers previously installed by :func:`configure_logging`."""
    logger = logging.getLogger(logger_name)
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
            try:
                handler.close()
            except (OSError, ValueError, io.UnsupportedOperation):
                pass
    logger.propagate = True
    logger.setLevel(logging.NOTSET)
