"""Tracing: nested spans over a JSONL sink (stdlib only).

A :class:`Tracer` produces :class:`Span` objects — named intervals with
a wall-clock start (``time.time``), a monotonic duration
(``time.perf_counter``), random 64-bit span ids and arbitrary key-value
attributes.  Every finished span is written as one JSON line to the
tracer's sink, so a trace file can be tailed while a job runs and
parsed with nothing but :func:`json.loads`.

Cross-process propagation
-------------------------
The mining service shards one job across a
:class:`~concurrent.futures.ProcessPoolExecutor`; a span cannot cross
that boundary, but its *context* can.  :class:`SpanContext` is a tiny
frozen (picklable) dataclass carrying ``(trace_id, span_id)``;
:meth:`Tracer.worker_config` packages it with the sink path into a
:class:`TraceWorkerConfig` that ships through the pool initializer.
Each worker then builds its own :class:`Tracer` appending to the *same*
file — one ``write()`` of one ``O_APPEND`` line per span keeps
concurrent writers from interleaving — and parents its shard spans on
the inherited context, so the shards of a 4-worker job stitch under a
single job root span (see ``docs/observability.md``).

Disabled tracing is free: every instrumentation site holds either a
``None`` (guarded by one ``is not None`` test) or a :class:`NullTracer`
whose spans are inert singletons.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from types import TracebackType
from typing import (
    Any,
    Dict,
    IO,
    List,
    Mapping,
    Optional,
    Sequence,
    Type,
    Union,
)

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceWorkerConfig",
    "load_spans",
    "summarize_trace",
]


def _new_id() -> str:
    """A random 64-bit hex id (span and trace identifiers)."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity of a span: enough to parent children on.

    >>> import pickle
    >>> ctx = SpanContext(trace_id="aa" * 8, span_id="bb" * 8)
    >>> pickle.loads(pickle.dumps(ctx)) == ctx
    True
    """

    trace_id: str
    span_id: str


class Span:
    """One named, attributed interval of a trace.

    Spans are context managers; leaving the ``with`` block ends the
    span, and an exception on the way out is recorded as ``error`` /
    ``outcome=failed`` attributes before propagating.  :meth:`end` is
    idempotent — the span is written to the sink exactly once.
    """

    def __init__(
        self,
        tracer: Optional["Tracer"],
        name: str,
        *,
        parent_id: Optional[str] = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.name = name
        self.trace_id = tracer.trace_id if tracer is not None else ""
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.start_unix = time.time()
        self._start_perf = time.perf_counter()
        self.duration_s: Optional[float] = None
        self._tracer = tracer

    @property
    def context(self) -> SpanContext:
        """The propagatable identity of this span."""
        return SpanContext(trace_id=self.trace_id, span_id=self.span_id)

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one key-value attribute."""
        self.attributes[key] = value

    def set_attributes(self, attributes: Mapping[str, Any]) -> None:
        """Attach several attributes at once."""
        self.attributes.update(attributes)

    def end(self) -> None:
        """Close the span and write it to the sink (idempotent)."""
        if self.duration_s is not None:
            return
        self.duration_s = time.perf_counter() - self._start_perf
        if self._tracer is not None:
            self._tracer._record(self)

    def to_dict(self) -> Dict[str, Any]:
        """The JSONL wire form of this span."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "pid": os.getpid(),
            "attributes": self.attributes,
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc is not None:
            self.set_attribute("outcome", "failed")
            self.set_attribute("error", f"{type(exc).__name__}: {exc}")
        self.end()

    def __repr__(self) -> str:
        state = "open" if self.duration_s is None else "ended"
        return f"Span({self.name!r}, id={self.span_id}, {state})"


class _NullSpan(Span):
    """An inert span: accepts the full API, records nothing."""

    def __init__(self) -> None:
        super().__init__(None, "null")

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_attributes(self, attributes: Mapping[str, Any]) -> None:
        pass

    def end(self) -> None:
        pass

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        pass


@dataclass(frozen=True)
class TraceWorkerConfig:
    """Everything a pool worker needs to join an existing trace.

    Picklable by construction (a path string plus a
    :class:`SpanContext`); shipped through the
    ``ProcessPoolExecutor`` initializer by
    :mod:`repro.service.executor`.
    """

    path: str
    parent: SpanContext

    def tracer(self) -> "Tracer":
        """A worker-side tracer appending to the shared trace file."""
        return Tracer(self.path, trace_id=self.parent.trace_id)


class Tracer:
    """Writes finished spans as JSON lines to a file or stream sink.

    Parameters
    ----------
    sink:
        A path (opened lazily in append mode — the cross-process case)
        or an open text stream (tests).
    trace_id:
        Join an existing trace instead of starting a new one (worker
        processes inherit the parent's id).
    overwrite:
        With a path sink: truncate any previous trace file up front.
        The service uses this so re-running a job replaces its trace.
    """

    def __init__(
        self,
        sink: Union[str, Path, IO[str]],
        *,
        trace_id: Optional[str] = None,
        overwrite: bool = False,
    ) -> None:
        self.trace_id = trace_id if trace_id is not None else _new_id()
        self._lock = threading.Lock()
        self._path: Optional[Path] = None
        self._stream: Optional[IO[str]] = None
        self._owns_stream = False
        if isinstance(sink, (str, Path)):
            self._path = Path(sink)
            self._path.parent.mkdir(parents=True, exist_ok=True)
            if overwrite and self._path.exists():
                self._path.unlink()
        else:
            self._stream = sink

    @property
    def enabled(self) -> bool:
        """Whether spans from this tracer are recorded at all."""
        return True

    @property
    def path(self) -> Optional[Path]:
        """The sink path (``None`` for stream-backed tracers)."""
        return self._path

    def span(
        self,
        name: str,
        *,
        parent: Optional[Union[Span, SpanContext]] = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> Span:
        """Open a span; parent it explicitly on a span or a context."""
        parent_id: Optional[str] = None
        if isinstance(parent, Span):
            parent_id = parent.span_id
        elif isinstance(parent, SpanContext):
            parent_id = parent.span_id
        return Span(self, name, parent_id=parent_id, attributes=attributes)

    def worker_config(
        self, parent: Union[Span, SpanContext]
    ) -> Optional[TraceWorkerConfig]:
        """The picklable hand-off for pool workers (``None`` when the
        sink is a stream, which cannot be shared across processes)."""
        if self._path is None:
            return None
        context = parent.context if isinstance(parent, Span) else parent
        return TraceWorkerConfig(path=str(self._path), parent=context)

    def emit(self, payload: Mapping[str, Any]) -> None:
        """Append one already-serialized span dict to the sink.

        The cross-*node* stitching seam: a fleet node ships the span
        dicts of its remotely mined shards back in the ``complete``
        payload, and the coordinator emits them into the job's trace
        file verbatim — same trace_id, same parent ids, so
        :func:`load_spans` sees one stitched trace.  The payload must
        already carry ``span_id`` (and normally ``trace_id`` /
        ``parent_id``); no validation beyond JSON-serializability is
        applied.
        """
        self._write_line(json.dumps(dict(payload), sort_keys=True))

    def _record(self, span: Span) -> None:
        self._write_line(json.dumps(span.to_dict(), sort_keys=True))

    def _write_line(self, line: str) -> None:
        with self._lock:
            if self._stream is None:
                assert self._path is not None
                # One append-mode write per span: O_APPEND makes each
                # line atomic w.r.t. the other worker processes.  The
                # lazy open must happen under the tracer lock (it is
                # the write it guards), so RL303 is suppressed here.
                self._stream = open(  # reglint: disable=RL303
                    self._path, "a", encoding="utf-8"
                )
                self._owns_stream = True
            self._stream.write(line + "\n")
            self._stream.flush()

    def close(self) -> None:
        """Flush and close a stream the tracer opened itself."""
        with self._lock:
            if self._owns_stream and self._stream is not None:
                self._stream.close()
                self._stream = None
                self._owns_stream = False


class NullTracer(Tracer):
    """The disabled tracer: every span is an inert singleton.

    >>> tracer = NullTracer()
    >>> with tracer.span("anything", attributes={"k": 1}) as span:
    ...     span.set_attribute("more", 2)
    >>> tracer.worker_config(span.context) is None
    True
    """

    def __init__(self) -> None:
        self.trace_id = ""
        self._null_span = _NullSpan()

    @property
    def enabled(self) -> bool:
        return False

    @property
    def path(self) -> Optional[Path]:
        return None

    def span(
        self,
        name: str,
        *,
        parent: Optional[Union[Span, SpanContext]] = None,
        attributes: Optional[Mapping[str, Any]] = None,
    ) -> Span:
        return self._null_span

    def worker_config(
        self, parent: Union[Span, SpanContext]
    ) -> Optional[TraceWorkerConfig]:
        return None

    def emit(self, payload: Mapping[str, Any]) -> None:
        pass

    def _record(self, span: Span) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared inert tracer for call sites that want an object, not ``None``.
NULL_TRACER = NullTracer()


# ----------------------------------------------------------------------
# Reading traces back
# ----------------------------------------------------------------------

def load_spans(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file; malformed lines are skipped.

    A torn line can only be the file's last write (append-mode line
    writes), so skipping it is safe — the trace merely misses the span
    that was being written when the process died.
    """
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(payload, dict) and "span_id" in payload:
                spans.append(payload)
    return spans


_PHASES = ("candidates", "windows", "emit")


def _format_seconds(value: float) -> str:
    return f"{value:.3f}s"


def _summarize_one(spans: Sequence[Mapping[str, Any]]) -> str:
    """Render one trace's per-phase / per-shard breakdown."""
    by_id = {str(span["span_id"]): span for span in spans}
    roots = [span for span in spans if span.get("parent_id") is None]
    lines: List[str] = []
    trace_id = str(spans[0].get("trace_id", "?"))
    lines.append(f"trace {trace_id}: {len(spans)} span(s)")
    for root in roots:
        duration = float(root.get("duration_s") or 0.0)
        attrs = root.get("attributes", {})
        suffix = ""
        if isinstance(attrs, dict) and attrs.get("job_id"):
            suffix = f"  job {attrs['job_id']}"
        lines.append(
            f"root: {root.get('name')}  wall {_format_seconds(duration)}"
            f"{suffix}"
        )

    shard_spans = [s for s in spans if s.get("name") == "shard"]
    resumed = [s for s in spans if s.get("name") == "shard.resumed"]
    phase_totals = {phase: 0.0 for phase in _PHASES}
    for span in shard_spans + resumed:
        attrs = span.get("attributes", {})
        if not isinstance(attrs, dict):
            continue
        for phase in _PHASES:
            phase_totals[phase] += float(attrs.get(f"time_{phase}", 0.0))
    lines.append(
        "phases (summed over shards): "
        + " | ".join(
            f"{phase} {_format_seconds(phase_totals[phase])}"
            for phase in _PHASES
        )
    )

    # Per-shard table: every attempt contributes a row aggregate.
    per_shard: Dict[int, Dict[str, Any]] = {}
    for span in shard_spans:
        attrs = span.get("attributes", {})
        if not isinstance(attrs, dict) or "shard" not in attrs:
            continue
        shard = int(attrs["shard"])
        row = per_shard.setdefault(
            shard,
            {"attempts": 0, "ok": False, "wall": 0.0, "nodes": 0,
             "clusters": 0, "resumed": False},
        )
        row["attempts"] += 1
        row["wall"] += float(span.get("duration_s") or 0.0)
        if attrs.get("outcome") == "ok":
            row["ok"] = True
            row["nodes"] = int(attrs.get("nodes_expanded", 0))
            row["clusters"] = int(attrs.get("clusters_emitted", 0))
    for span in resumed:
        attrs = span.get("attributes", {})
        if not isinstance(attrs, dict) or "shard" not in attrs:
            continue
        shard = int(attrs["shard"])
        per_shard[shard] = {
            "attempts": 0,
            "ok": True,
            "wall": 0.0,
            "nodes": int(attrs.get("nodes_expanded", 0)),
            "clusters": int(attrs.get("clusters_emitted", 0)),
            "resumed": True,
        }
    if per_shard:
        lines.append(
            f"{'shard':>5}  {'attempts':>8}  {'status':<8}  "
            f"{'wall':>9}  {'nodes':>8}  {'clusters':>8}"
        )
        for shard in sorted(per_shard):
            row = per_shard[shard]
            if row["resumed"]:
                status = "resumed"
            elif row["ok"]:
                status = "ok"
            else:
                status = "lost"
            lines.append(
                f"{shard:>5}  {row['attempts']:>8}  {status:<8}  "
                f"{_format_seconds(row['wall']):>9}  {row['nodes']:>8}  "
                f"{row['clusters']:>8}"
            )

    other = [
        s for s in spans
        if s.get("name") not in ("shard", "shard.resumed")
        and s.get("parent_id") is not None
    ]
    for span in other:
        lines.append(
            f"span {span.get('name')}  "
            f"wall {_format_seconds(float(span.get('duration_s') or 0.0))}"
        )
    # Orphan diagnostics: spans whose parent never made it to the file
    # (e.g. a worker hard-killed mid-job) still count, but say so.
    orphans = [
        s for s in spans
        if s.get("parent_id") is not None
        and str(s.get("parent_id")) not in by_id
    ]
    if orphans:
        lines.append(f"warning: {len(orphans)} span(s) with missing parents")
    return "\n".join(lines)


def summarize_trace(spans: Sequence[Mapping[str, Any]]) -> str:
    """Per-phase / per-shard wall-clock breakdown of a span list.

    Multiple traces in one file (e.g. a job re-run appended) are
    summarized separately in file order.
    """
    if not spans:
        raise ValueError("trace contains no spans")
    order: List[str] = []
    groups: Dict[str, List[Mapping[str, Any]]] = {}
    for span in spans:
        trace_id = str(span.get("trace_id", "?"))
        if trace_id not in groups:
            groups[trace_id] = []
            order.append(trace_id)
        groups[trace_id].append(span)
    return "\n\n".join(_summarize_one(groups[tid]) for tid in order)
