"""repro.obs — tracing, metrics, and structured logging (stdlib only).

Three pillars, each usable on its own:

- :mod:`repro.obs.trace` — nested spans with monotonic durations,
  written to a JSONL sink; span contexts propagate across process
  boundaries so sharded jobs stitch into one trace.
- :mod:`repro.obs.metrics` — process-wide counters / gauges /
  histograms rendered in the Prometheus text exposition format.
- :mod:`repro.obs.log` — JSON-lines structured logging on the stdlib
  ``logging`` stack, silent until explicitly configured.

See ``docs/observability.md`` for the span model, metric catalogue,
and endpoint contracts.
"""

from repro.obs.log import (
    JsonFormatter,
    StructuredLogger,
    TextFormatter,
    configure_logging,
    get_logger,
    reset_logging,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_family,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanContext,
    Tracer,
    TraceWorkerConfig,
    load_spans,
    summarize_trace,
)

__all__ = [
    # trace
    "Span",
    "SpanContext",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceWorkerConfig",
    "load_spans",
    "summarize_trace",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_family",
    "DEFAULT_BUCKETS",
    # log
    "StructuredLogger",
    "JsonFormatter",
    "TextFormatter",
    "get_logger",
    "configure_logging",
    "reset_logging",
]
