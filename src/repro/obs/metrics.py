"""Process-wide metrics with Prometheus text exposition (stdlib only).

A :class:`MetricsRegistry` owns named metric families — counters,
gauges and histograms, optionally labelled — and renders them in the
Prometheus text exposition format (version 0.0.4) for the service's
``GET /metrics`` endpoint.  Registration is idempotent: asking for an
already-registered family with the same type and labels returns the
existing instrument, so independent modules can share families without
threading instrument objects around.

Pull-time *collectors* cover state that already has an owner with its
own counters (the :class:`~repro.service.cache.CacheStats` of the
artifact cache, say): a collector is a zero-argument callable returning
pre-rendered exposition text, invoked at every :meth:`render`.  The
:func:`render_family` helper formats such a family correctly.

All updates are lock-guarded and O(1); an un-scraped registry costs a
dictionary entry per family and nothing per request.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_family",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (seconds-flavoured, matching
#: the HTTP and job-duration use cases).  ``+Inf`` is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(labels[key]))}"'
        for key in sorted(labels)
    )
    return "{" + inner + "}"


def render_family(
    name: str,
    kind: str,
    help_text: str,
    samples: Sequence[Tuple[Mapping[str, str], float]],
    *,
    suffix: str = "",
) -> str:
    """Render one exposition family (used by pull-time collectors).

    >>> print(render_family("x_total", "counter", "an example",
    ...                     [({"k": "a"}, 1.0)]), end="")
    # HELP x_total an example
    # TYPE x_total counter
    x_total{k="a"} 1
    """
    lines = [f"# HELP {name} {help_text}", f"# TYPE {name} {kind}"]
    for labels, value in samples:
        lines.append(
            f"{name}{suffix}{_format_labels(labels)} {_format_value(value)}"
        )
    return "\n".join(lines) + "\n"


class _Metric:
    """Common family machinery: label children, locking, rendering."""

    kind = "untyped"

    def __init__(
        self, name: str, help_text: str, labelnames: Sequence[str]
    ) -> None:
        self.name = _check_name(name)
        self.help_text = help_text
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        for label in self.labelnames:
            _check_name(label)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], "_Metric"] = {}

    def labels(self, **labels: str) -> "_Metric":
        """The child instrument for one label combination (created on
        first use)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = type(self)(self.name, self.help_text, ())
                self._children[key] = child
            return child

    def _self_child(self) -> "_Metric":
        if self.labelnames:
            raise ValueError(
                f"metric {self.name} is labelled {self.labelnames}; "
                f"call .labels(...) first"
            )
        return self

    def _samples(self) -> List[str]:
        raise NotImplementedError

    def _child_rows(self) -> List[Tuple[Dict[str, str], "_Metric"]]:
        """(labels, child) pairs — the family itself when unlabelled."""
        if not self.labelnames:
            return [({}, self)]
        with self._lock:
            return [
                (dict(zip(self.labelnames, key)), child)
                for key, child in sorted(self._children.items())
            ]

    def render(self) -> str:
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for labels, child in self._child_rows():
            lines.extend(child._render_samples(labels))
        return "\n".join(lines) + "\n"

    def _render_samples(self, labels: Mapping[str, str]) -> List[str]:
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self._value = 0.0

    def labels(self, **labels: str) -> "Counter":
        child = super().labels(**labels)
        assert isinstance(child, Counter)
        return child

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        child = self._self_child()
        assert isinstance(child, Counter)
        with child._lock:
            child._value += amount

    @property
    def value(self) -> float:
        child = self._self_child()
        assert isinstance(child, Counter)
        with child._lock:
            return child._value

    def _render_samples(self, labels: Mapping[str, str]) -> List[str]:
        with self._lock:
            value = self._value
        return [f"{self.name}{_format_labels(labels)} {_format_value(value)}"]


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help_text, labelnames)
        self._value = 0.0

    def labels(self, **labels: str) -> "Gauge":
        child = super().labels(**labels)
        assert isinstance(child, Gauge)
        return child

    def inc(self, amount: float = 1.0) -> None:
        child = self._self_child()
        assert isinstance(child, Gauge)
        with child._lock:
            child._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set(self, value: float) -> None:
        child = self._self_child()
        assert isinstance(child, Gauge)
        with child._lock:
            child._value = float(value)

    @property
    def value(self) -> float:
        child = self._self_child()
        assert isinstance(child, Gauge)
        with child._lock:
            return child._value

    def _render_samples(self, labels: Mapping[str, str]) -> List[str]:
        with self._lock:
            value = self._value
        return [f"{self.name}{_format_labels(labels)} {_format_value(value)}"]


class Histogram(_Metric):
    """Observations bucketed by upper bound (cumulative, plus sum/count)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if bounds and math.isinf(bounds[-1]):
            bounds = bounds[:-1]
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._bucket_counts = [0] * len(self.bounds)
        self._sum = 0.0
        self._count = 0

    def labels(self, **labels: str) -> "Histogram":
        child = super().labels(**labels)
        assert isinstance(child, Histogram)
        if child.bounds != self.bounds:
            child.bounds = self.bounds
            child._bucket_counts = [0] * len(self.bounds)
        return child

    def observe(self, value: float) -> None:
        child = self._self_child()
        assert isinstance(child, Histogram)
        with child._lock:
            child._sum += value
            child._count += 1
            index = bisect.bisect_left(child.bounds, value)
            if index < len(child._bucket_counts):
                child._bucket_counts[index] += 1

    @property
    def count(self) -> int:
        child = self._self_child()
        assert isinstance(child, Histogram)
        with child._lock:
            return child._count

    @property
    def sum(self) -> float:
        child = self._self_child()
        assert isinstance(child, Histogram)
        with child._lock:
            return child._sum

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation inside the winning bucket, the standard
        Prometheus ``histogram_quantile`` estimate: exact only at
        bucket bounds, but plenty for p50/p99 dashboards and the load
        harness.  Returns ``nan`` with no observations; the top bound
        when the quantile lands in the ``+Inf`` bucket (the estimate
        cannot exceed the largest finite bound).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        child = self._self_child()
        assert isinstance(child, Histogram)
        with child._lock:
            counts = list(child._bucket_counts)
            total = child._count
        if total == 0:
            return math.nan
        rank = q * total
        cumulative = 0
        for index, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank and count > 0:
                lower = 0.0 if index == 0 else child.bounds[index - 1]
                upper = child.bounds[index]
                fraction = (rank - previous) / count
                return lower + (upper - lower) * min(1.0, fraction)
        return child.bounds[-1]

    def _render_samples(self, labels: Mapping[str, str]) -> List[str]:
        with self._lock:
            counts = list(self._bucket_counts)
            total = self._count
            acc = self._sum
        lines: List[str] = []
        cumulative = 0
        for bound, count in zip(self.bounds, counts):
            cumulative += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = _format_value(bound)
            lines.append(
                f"{self.name}_bucket{_format_labels(bucket_labels)} "
                f"{cumulative}"
            )
        inf_labels = dict(labels)
        inf_labels["le"] = "+Inf"
        lines.append(
            f"{self.name}_bucket{_format_labels(inf_labels)} {total}"
        )
        lines.append(
            f"{self.name}_sum{_format_labels(labels)} {_format_value(acc)}"
        )
        lines.append(f"{self.name}_count{_format_labels(labels)} {total}")
        return lines


class MetricsRegistry:
    """A named set of metric families plus pull-time collectors.

    >>> registry = MetricsRegistry()
    >>> jobs = registry.counter("jobs_total", "jobs", labelnames=("state",))
    >>> jobs.labels(state="done").inc()
    >>> print(registry.render(), end="")
    # HELP jobs_total jobs
    # TYPE jobs_total counter
    jobs_total{state="done"} 1
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}
        self._collectors: List[Callable[[], str]] = []

    def _register(self, metric_type: type, name: str, help_text: str,
                  labelnames: Sequence[str],
                  buckets: Optional[Sequence[float]] = None) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if (
                    type(existing) is not metric_type
                    or existing.labelnames != tuple(labelnames)
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            if metric_type is Histogram:
                metric: _Metric = Histogram(
                    name, help_text, labelnames,
                    buckets if buckets is not None else DEFAULT_BUCKETS,
                )
            elif metric_type is Gauge:
                metric = Gauge(name, help_text, labelnames)
            else:
                metric = Counter(name, help_text, labelnames)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create a counter family (idempotent)."""
        metric = self._register(Counter, name, help_text, labelnames)
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Get or create a gauge family (idempotent)."""
        metric = self._register(Gauge, name, help_text, labelnames)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a histogram family (idempotent)."""
        metric = self._register(
            Histogram, name, help_text, labelnames, buckets
        )
        assert isinstance(metric, Histogram)
        return metric

    def register_collector(self, collector: Callable[[], str]) -> None:
        """Add a pull-time source of pre-rendered exposition text.

        Collector output must be complete families (use
        :func:`render_family`) whose names do not collide with
        registered metrics.  A collector that raises is skipped — a
        broken stats source must not take ``/metrics`` down.
        """
        with self._lock:
            self._collectors.append(collector)

    def render(self) -> str:
        """The full Prometheus text exposition of this registry."""
        with self._lock:
            metrics = [self._metrics[k] for k in sorted(self._metrics)]
            collectors = list(self._collectors)
        parts = [metric.render() for metric in metrics]
        for collector in collectors:
            try:
                text = collector()
            except Exception:  # reglint: disable=RL103
                # Scrapes must survive a broken stats source.
                continue
            if text:
                parts.append(text if text.endswith("\n") else text + "\n")
        return "".join(parts)
