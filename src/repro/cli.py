"""Command-line interface: ``reg-cluster`` (or ``python -m repro``).

Subcommands
-----------
``mine``
    Mine reg-clusters from a tab-delimited expression file.
``generate``
    Write a synthetic dataset or the yeast surrogate to disk.
``rwave``
    Print the RWave^gamma model of one gene (Figure 3 style).
``sweep``
    Run one Figure 7 efficiency sweep and print the series.
``validate``
    Re-check a saved result file against Definition 3.2.
``profile``
    Render one saved cluster's expression profiles as ASCII art.
``experiment``
    Regenerate one of the paper's tables/figures end to end.
``describe``
    Print headline statistics of an expression file.
``serve``
    Run the mining daemon (job store + HTTP API, see docs/service.md);
    with ``--fleet`` it coordinates a multi-node work queue
    (docs/distributed.md).
``node``
    Run a fleet worker node that leases shards from a ``--fleet``
    coordinator and mines them locally (docs/distributed.md).
``submit``
    Submit a matrix to a running daemon (optionally wait for the result).
``evolve``
    Evolve a stored matrix on a running daemon by one typed delta
    (append conditions/genes, drop genes) and mine the child
    incrementally (docs/incremental.md).
``status``
    Query a job on a running daemon.
``trace``
    Inspect span traces written by ``mine --trace`` or ``serve
    --trace-dir`` (see docs/observability.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench.report import ascii_series
from repro.bench.runner import run_sweep
from repro.core.miner import mine_reg_clusters
from repro.core.params import MiningParameters
from repro.core.rwave import build_rwave
from repro.core.serialize import load_result, save_result
from repro.core.thresholds import resolve_strategy
from repro.core.validate import validation_errors
from repro.eval.profiles import render_cluster_profiles
from repro.datasets.synthetic import make_synthetic_dataset
from repro.datasets.yeast import make_yeast_surrogate
from repro.matrix.io import load_expression_matrix, save_expression_matrix
from repro.matrix.summary import summarize

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``reg-cluster`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="reg-cluster",
        description="Mine shifting-and-scaling co-regulation patterns "
        "(reg-clusters) from gene expression profiles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    mine = sub.add_parser("mine", help="mine reg-clusters from a matrix file")
    mine.add_argument("path", help="tab-delimited expression file")
    mine.add_argument("--min-genes", type=int, required=True, metavar="MinG")
    mine.add_argument(
        "--min-conditions", type=int, required=True, metavar="MinC"
    )
    mine.add_argument("--gamma", type=float, required=True,
                      help="regulation threshold in [0, 1]")
    mine.add_argument("--epsilon", type=float, required=True,
                      help="coherence threshold >= 0")
    mine.add_argument("--max-clusters", type=int, default=None)
    mine.add_argument(
        "--stats", action="store_true", help="also print search statistics"
    )
    mine.add_argument(
        "--output", default=None, metavar="RESULT.json",
        help="also write the result as JSON",
    )
    mine.add_argument(
        "--threshold-strategy", default="range_fraction",
        help="per-gene threshold strategy (range_fraction, "
        "closest_pair_average, normalized_std, mean_fraction, constant)",
    )
    mine.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="mine shards on N worker processes (results are identical "
        "for every value; see docs/service.md)",
    )
    mine.add_argument(
        "--trace", default=None, metavar="TRACE.jsonl",
        help="write a span trace of the run (inspect with "
        "'reg-cluster trace summary'; see docs/observability.md)",
    )

    generate = sub.add_parser("generate", help="write a dataset to disk")
    generate.add_argument("kind", choices=["synthetic", "yeast"])
    generate.add_argument("--out", required=True, help="output path")
    generate.add_argument("--genes", type=int, default=3000)
    generate.add_argument("--conditions", type=int, default=30)
    generate.add_argument("--clusters", type=int, default=30)
    generate.add_argument("--seed", type=int, default=0)

    rwave = sub.add_parser("rwave", help="print one gene's RWave model")
    rwave.add_argument("path", help="tab-delimited expression file")
    rwave.add_argument("--gene", required=True, help="gene name or index")
    rwave.add_argument("--gamma", type=float, required=True)

    sweep = sub.add_parser("sweep", help="run one Figure 7 efficiency sweep")
    sweep.add_argument(
        "parameter", choices=["n_genes", "n_conditions", "n_clusters"]
    )
    sweep.add_argument(
        "values", type=int, nargs="+", help="parameter values to measure"
    )
    sweep.add_argument("--genes", type=int, default=3000)
    sweep.add_argument("--conditions", type=int, default=30)
    sweep.add_argument("--clusters", type=int, default=30)

    validate = sub.add_parser(
        "validate", help="re-check a saved result against Definition 3.2"
    )
    validate.add_argument("matrix", help="tab-delimited expression file")
    validate.add_argument("result", help="JSON result file (from mine --output)")

    profile = sub.add_parser(
        "profile", help="render one cluster's profiles as ASCII art"
    )
    profile.add_argument("matrix", help="tab-delimited expression file")
    profile.add_argument("result", help="JSON result file")
    profile.add_argument("--index", type=int, default=0,
                         help="cluster index within the result (default 0)")
    profile.add_argument("--height", type=int, default=16)

    experiment = sub.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument(
        "which",
        choices=["fig1", "fig2", "fig4", "fig7", "fig8", "table2"],
    )
    experiment.add_argument(
        "--scale", choices=["paper", "quick"], default="paper",
        help="workload size (quick shrinks the datasets)",
    )

    describe = sub.add_parser(
        "describe", help="print headline statistics of a matrix file"
    )
    describe.add_argument("path", help="tab-delimited expression file")
    describe.add_argument(
        "--gamma", type=float, default=None,
        help="also print the median regulation threshold at this gamma",
    )

    serve = sub.add_parser(
        "serve", help="run the mining daemon (HTTP API, docs/service.md)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765,
        help="TCP port (0 picks an ephemeral port, printed on startup)",
    )
    serve.add_argument(
        "--store", default=".reg-cluster-service",
        help="service state directory (jobs, cache, matrices)",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for sharded mining (1 = in-process)",
    )
    serve.add_argument(
        "--cache-bytes", type=int, default=None, metavar="N",
        help="artifact cache size bound in bytes",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget (default: no timeout); a "
        "timed-out job keeps its shard checkpoints and resumes on "
        "resubmission",
    )
    serve.add_argument(
        "--shard-retries", type=int, default=None, metavar="N",
        help="retry budget per shard before the job degrades "
        "(default: 2; see docs/robustness.md)",
    )
    serve.add_argument(
        "--faults", default=None, metavar="JSON",
        help="fault-injection plan as JSON (chaos testing; overrides "
        "the REPRO_FAULTS environment variable)",
    )
    serve.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write a span trace per executed job to DIR "
        "(docs/observability.md)",
    )
    serve.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON-lines logs on stderr",
    )
    serve.add_argument(
        "--verbose", action="store_true",
        help="log every HTTP request (text logs unless --log-json)",
    )
    serve.add_argument(
        "--fleet", action="store_true",
        help="act as a fleet coordinator: worker nodes (reg-cluster "
        "node) can lease shards over /fleet/... (docs/distributed.md)",
    )
    serve.add_argument(
        "--lease-ttl", type=float, default=None, metavar="SECONDS",
        help="with --fleet: shard-lease TTL; un-heartbeated leases "
        "past it are reclaimed and re-queued (default: 30)",
    )
    serve.add_argument(
        "--fleet-no-local", action="store_true",
        help="with --fleet: never mine shards on the coordinator "
        "itself, leave all mining to the nodes",
    )
    serve.add_argument(
        "--max-connections", type=int, default=None, metavar="N",
        help="concurrent HTTP connections before accept-time shedding "
        "with 429 (default: 512; docs/service.md)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=None, metavar="N",
        help="parsed requests waiting for an HTTP worker before "
        "shedding with 429 + Retry-After (default: 256)",
    )
    serve.add_argument(
        "--http-workers", type=int, default=None, metavar="N",
        help="HTTP worker threads behind the event loop (default: 8)",
    )
    serve.add_argument(
        "--tenant-rate", type=float, default=None, metavar="R",
        help="per-tenant token-bucket refill rate in requests/second "
        "keyed on X-Repro-Tenant (default: no rate limiting)",
    )
    serve.add_argument(
        "--tenant-burst", type=float, default=None, metavar="B",
        help="with --tenant-rate: bucket capacity (default: 2x rate)",
    )
    serve.add_argument(
        "--tenant-quota", type=int, default=None, metavar="N",
        help="max in-flight requests per tenant; excess sheds with "
        "429 (default: no quota)",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=None, metavar="S",
        help="close connections idle for S seconds with no request in "
        "flight (default: 60; 0 disables the sweep)",
    )

    node = sub.add_parser(
        "node",
        help="run a fleet worker node against a --fleet coordinator "
        "(docs/distributed.md)",
    )
    node.add_argument(
        "--coordinator", required=True, metavar="URL",
        help="base URL of the coordinator daemon (reg-cluster serve "
        "--fleet)",
    )
    node.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for mining one lease (1 = in-process)",
    )
    node.add_argument(
        "--node-id", default=None, metavar="ID",
        help="stable node identity (default: <hostname>-<pid>)",
    )
    node.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="node-local artifact cache directory (default: "
        ".reg-cluster-node-<pid>)",
    )
    node.add_argument(
        "--poll-interval", type=float, default=0.2, metavar="SECONDS",
        help="sleep between empty lease polls",
    )
    node.add_argument(
        "--max-shards", type=int, default=None, metavar="N",
        help="shards requested per lease (capped by the coordinator)",
    )
    node.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON-lines logs on stderr",
    )
    node.add_argument(
        "--verbose", action="store_true",
        help="log lease/heartbeat traffic (text logs unless --log-json)",
    )

    submit = sub.add_parser(
        "submit", help="submit a matrix to a running daemon"
    )
    submit.add_argument("path", help="tab-delimited expression file")
    submit.add_argument(
        "--url", default="http://127.0.0.1:8765", help="daemon base URL"
    )
    submit.add_argument("--min-genes", type=int, required=True,
                        metavar="MinG")
    submit.add_argument("--min-conditions", type=int, required=True,
                        metavar="MinC")
    submit.add_argument("--gamma", type=float, required=True,
                        help="regulation threshold in [0, 1]")
    submit.add_argument("--epsilon", type=float, required=True,
                        help="coherence threshold >= 0")
    submit.add_argument("--max-clusters", type=int, default=None)
    submit.add_argument(
        "--priority", choices=["high", "normal", "low"], default=None,
        help="executor priority class (weighted-fair dequeue; "
        "default: normal)",
    )
    submit.add_argument(
        "--tenant", default=None, metavar="NAME",
        help="tenant tag sent as X-Repro-Tenant for the daemon's "
        "admission accounting",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="long-poll until the job finishes and print the outcome",
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0,
        help="--wait polling deadline in seconds",
    )
    submit.add_argument(
        "--output", default=None, metavar="RESULT.json",
        help="with --wait: also write the finished result as JSON",
    )

    evolve = sub.add_parser(
        "evolve",
        help="evolve a stored matrix by one delta and mine the child "
        "incrementally (docs/incremental.md)",
    )
    evolve.add_argument(
        "parent_digest",
        help="content digest of the stored parent matrix (64 hex chars; "
        "shown as matrix_digest by 'reg-cluster status')",
    )
    delta_group = evolve.add_mutually_exclusive_group(required=True)
    delta_group.add_argument(
        "--append-conditions", default=None, metavar="FILE",
        help="tab-delimited file of the NEW conditions only: rows are "
        "the parent's genes (same order), columns the new conditions",
    )
    delta_group.add_argument(
        "--append-genes", default=None, metavar="FILE",
        help="tab-delimited file of the NEW genes only: rows are the "
        "new genes, columns the parent's conditions (same order)",
    )
    delta_group.add_argument(
        "--drop-genes", nargs="+", default=None, metavar="GENE",
        help="gene names to retire from the parent matrix",
    )
    evolve.add_argument(
        "--url", default="http://127.0.0.1:8765", help="daemon base URL"
    )
    evolve.add_argument("--min-genes", type=int, required=True,
                        metavar="MinG")
    evolve.add_argument("--min-conditions", type=int, required=True,
                        metavar="MinC")
    evolve.add_argument("--gamma", type=float, required=True,
                        help="regulation threshold in [0, 1]")
    evolve.add_argument("--epsilon", type=float, required=True,
                        help="coherence threshold >= 0")
    evolve.add_argument("--max-clusters", type=int, default=None)
    evolve.add_argument(
        "--priority", choices=["high", "normal", "low"], default=None,
        help="executor priority class (default: normal)",
    )
    evolve.add_argument(
        "--tenant", default=None, metavar="NAME",
        help="tenant tag sent as X-Repro-Tenant",
    )
    evolve.add_argument(
        "--wait", action="store_true",
        help="long-poll until the revision job finishes",
    )
    evolve.add_argument(
        "--timeout", type=float, default=300.0,
        help="--wait polling deadline in seconds",
    )

    status = sub.add_parser(
        "status", help="query a job (or list all jobs) on a daemon"
    )
    status.add_argument(
        "job_id", nargs="?", default=None,
        help="job id; omit to list every job",
    )
    status.add_argument(
        "--url", default="http://127.0.0.1:8765", help="daemon base URL"
    )
    status.add_argument(
        "--stats", action="store_true",
        help="also print the search statistics of a finished job "
        "(including degraded jobs, whose record lists missing_shards)",
    )

    trace = sub.add_parser(
        "trace", help="inspect span traces (docs/observability.md)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary",
        help="per-phase / per-shard wall-clock breakdown of a trace file",
    )
    trace_summary.add_argument(
        "path", help="trace JSONL file (from mine --trace or serve "
        "--trace-dir)",
    )

    return parser


def _validated_parameters(
    parser: argparse.ArgumentParser, args: argparse.Namespace
) -> MiningParameters:
    """Check MinG/MinC/gamma/epsilon bounds before any matrix I/O.

    Bad values become a standard argparse usage error (exit status 2)
    instead of a mid-run exception after the matrix has been loaded.
    """
    try:
        return MiningParameters(
            min_genes=args.min_genes,
            min_conditions=args.min_conditions,
            gamma=args.gamma,
            epsilon=args.epsilon,
            max_clusters=args.max_clusters,
        )
    except ValueError as error:
        parser.error(str(error))
        raise AssertionError("parser.error always exits")  # pragma: no cover


def _cmd_mine(args: argparse.Namespace) -> int:
    if args.workers < 1:
        raise ValueError(f"--workers must be >= 1, got {args.workers}")
    matrix = load_expression_matrix(args.path)
    thresholds = None
    if args.threshold_strategy != "range_fraction":
        strategy = resolve_strategy(args.threshold_strategy)
        thresholds = strategy(matrix, args.gamma)
    if args.workers > 1 or args.trace:
        result = _mine_sharded_cli(args, matrix, thresholds)
        if result is None:
            return 1
    else:
        result = mine_reg_clusters(
            matrix,
            min_genes=args.min_genes,
            min_conditions=args.min_conditions,
            gamma=args.gamma,
            epsilon=args.epsilon,
            max_clusters=args.max_clusters,
            thresholds=thresholds,
        )
    print(f"{len(result)} reg-cluster(s)")
    for index, cluster in enumerate(result, start=1):
        print(f"[{index}]")
        print(cluster.describe(matrix))
    if args.stats:
        for key, value in result.statistics.as_dict().items():
            print(f"  {key}: {value}")
        for key, seconds in result.statistics.timers.as_dict().items():
            print(f"  phase.{key}: {seconds:.3f}s")
    if args.output:
        save_result(result, args.output, matrix=matrix)
        print(f"result written to {args.output}")
    return 0


def _mine_sharded_cli(
    args: argparse.Namespace,
    matrix: "ExpressionMatrix",
    thresholds: "Optional[NDArray[np.float64]]",
) -> "Optional[MiningResult]":
    """The ``mine --workers/--trace`` path: sharded, optionally traced.

    Returns ``None`` (after reporting) when shards were lost — the
    degraded payload is not printed as if it were complete.
    """
    from repro.core.rwave import RWaveIndex
    from repro.obs.trace import NULL_TRACER, Tracer
    from repro.service.executor import mine_sharded_outcome

    params: MiningParameters = args.parameters
    index = RWaveIndex(matrix, params.gamma, thresholds=thresholds)
    tracer = (
        Tracer(args.trace, overwrite=True) if args.trace else NULL_TRACER
    )
    root = tracer.span(
        "job",
        attributes={
            "source": args.path,
            "n_workers": args.workers,
            "n_genes": matrix.n_genes,
            "n_conditions": matrix.n_conditions,
        },
    )
    try:
        outcome = mine_sharded_outcome(
            matrix,
            params,
            n_workers=args.workers,
            index=index,
            tracer=tracer,
            trace_parent=root.context,
        )
        root.set_attributes(outcome.result.statistics.timers.prefixed())
        root.set_attribute(
            "outcome", "degraded" if outcome.degraded else "ok"
        )
    finally:
        root.end()
        tracer.close()
    if args.trace:
        print(f"trace written to {args.trace}")
    if outcome.missing_shards:
        print(
            f"error: shards {outcome.missing_shards} were lost; "
            f"partial result withheld",
            file=sys.stderr,
        )
        return None
    return outcome.result


def _cmd_validate(args: argparse.Namespace) -> int:
    matrix = load_expression_matrix(args.matrix)
    result = load_result(args.result, matrix=matrix)
    bad = 0
    for index, cluster in enumerate(result.clusters, start=1):
        errors = validation_errors(matrix, cluster, result.parameters)
        if errors:
            bad += 1
            print(f"[{index}] INVALID:")
            for error in errors:
                print(f"    {error}")
    print(
        f"{len(result.clusters) - bad}/{len(result.clusters)} clusters "
        f"valid under Definition 3.2"
    )
    return 0 if bad == 0 else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    matrix = load_expression_matrix(args.matrix)
    result = load_result(args.result, matrix=matrix)
    if not 0 <= args.index < len(result.clusters):
        raise ValueError(
            f"cluster index {args.index} out of range "
            f"(result has {len(result.clusters)} clusters)"
        )
    cluster = result.clusters[args.index]
    print(cluster.describe(matrix))
    print()
    print(render_cluster_profiles(cluster, matrix, height=args.height))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "synthetic":
        data = make_synthetic_dataset(
            n_genes=args.genes,
            n_conditions=args.conditions,
            n_clusters=args.clusters,
            seed=args.seed,
        )
        matrix = data.matrix
        print(
            f"synthetic {matrix.n_genes}x{matrix.n_conditions} with "
            f"{data.n_embedded} embedded clusters -> {args.out}"
        )
    else:
        surrogate = make_yeast_surrogate(seed=args.seed)
        matrix = surrogate.matrix
        print(
            f"yeast surrogate {matrix.n_genes}x{matrix.n_conditions} with "
            f"{len(surrogate.modules)} modules -> {args.out}"
        )
    save_expression_matrix(matrix, args.out)
    return 0


def _cmd_rwave(args: argparse.Namespace) -> int:
    matrix = load_expression_matrix(args.path)
    gene: "int | str" = args.gene
    if isinstance(gene, str) and gene.lstrip("-").isdigit():
        gene = int(gene)
    model = build_rwave(matrix, gene, args.gamma)
    print(
        f"RWave^{args.gamma} of {args.gene} "
        f"(threshold {model.threshold:.4g})"
    )
    print(model.render(matrix.condition_names))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.datasets.synthetic import SyntheticConfig

    base = SyntheticConfig(
        n_genes=args.genes,
        n_conditions=args.conditions,
        n_clusters=args.clusters,
    )
    result = run_sweep(args.parameter, args.values, base_config=base)
    print(
        ascii_series(
            f"runtime vs {args.parameter}",
            result.values(),
            result.seconds(),
            unit="s",
        )
    )
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    matrix = load_expression_matrix(args.path)
    summary = summarize(matrix)
    print(summary.render())
    if args.gamma is not None:
        threshold = summary.suggested_gamma_threshold(args.gamma)
        print(
            f"median regulation threshold at gamma={args.gamma}: "
            f"{threshold:.4g}"
        )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        run_figure1,
        run_figure2,
        run_figure4,
        run_figure7,
        run_figure8,
        run_table2,
    )

    quick = args.scale == "quick"
    if args.which == "fig1":
        print(run_figure1().render())
    elif args.which == "fig2":
        print(run_figure2().render())
    elif args.which == "fig4":
        print(run_figure4().render())
    elif args.which == "fig7":
        print(run_figure7(scale=args.scale).render())
    elif args.which == "fig8":
        shape = (600, 17) if quick else (2884, 17)
        print(run_figure8(shape=shape).render())
    else:  # table2
        shape = (600, 17) if quick else (2884, 17)
        print(run_table2(shape=shape).render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import (
        DEFAULT_MAX_BYTES,
        FaultPlan,
        MiningService,
        RetryPolicy,
        serve,
    )

    from repro.obs.log import configure_logging

    fault_plan = (
        FaultPlan.from_json(args.faults) if args.faults is not None else None
    )
    retry = (
        RetryPolicy(max_retries=args.shard_retries)
        if args.shard_retries is not None
        else None
    )
    # --log-json always configures structured logs; plain --verbose gets
    # the human-readable text format instead.  Neither flag leaves the
    # default NullHandler in place (daemon events stay silent).
    if args.log_json:
        configure_logging(fmt="json")
    elif args.verbose:
        configure_logging(fmt="text")
    fleet_kwargs = {}
    if args.fleet:
        fleet_kwargs["fleet"] = True
        fleet_kwargs["fleet_local"] = not args.fleet_no_local
        if args.lease_ttl is not None:
            fleet_kwargs["lease_ttl"] = args.lease_ttl
    elif args.lease_ttl is not None or args.fleet_no_local:
        raise ValueError(
            "--lease-ttl/--fleet-no-local require --fleet"
        )
    service = MiningService(
        args.store,
        n_workers=args.workers,
        max_cache_bytes=(
            DEFAULT_MAX_BYTES if args.cache_bytes is None else args.cache_bytes
        ),
        job_timeout=args.job_timeout,
        retry=retry,
        fault_plan=fault_plan,
        trace_dir=args.trace_dir,
        **fleet_kwargs,
    )
    server = serve(
        service, args.host, args.port, quiet=not args.verbose,
        max_connections=args.max_connections,
        queue_depth=args.queue_depth,
        http_workers=args.http_workers,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        tenant_quota=args.tenant_quota,
        idle_timeout=args.idle_timeout,
    )
    host, port = server.server_address[0], server.server_address[1]
    print(
        f"serving on http://{host}:{port} "
        f"(store: {args.store}, workers: {args.workers}"
        f"{', fleet coordinator' if args.fleet else ''})"
    )
    service.start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
        service.stop()
    return 0


def _cmd_node(args: argparse.Namespace) -> int:
    from repro.obs.log import configure_logging
    from repro.service.fleet import DEFAULT_LEASE_SHARDS, FleetNode

    if args.log_json:
        configure_logging(fmt="json")
    elif args.verbose:
        configure_logging(fmt="text")
    node = FleetNode(
        args.coordinator,
        node_id=args.node_id,
        workers=args.workers,
        cache_dir=args.cache_dir,
        poll_interval=args.poll_interval,
        max_lease_shards=(
            DEFAULT_LEASE_SHARDS
            if args.max_shards is None
            else args.max_shards
        ),
    )
    print(
        f"node {node.node_id} polling {args.coordinator} "
        f"(workers: {args.workers}, cache: {node.cache_dir})"
    )
    try:
        node.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json as _json
    from repro.service import ServiceClient, ServiceError
    from repro.service.jobs import parameters_to_dict

    matrix = load_expression_matrix(args.path)
    client = ServiceClient(args.url, tenant=args.tenant)
    try:
        record = client.submit_matrix(
            matrix,
            parameters_to_dict(args.parameters),
            priority=args.priority,
        )
        print(f"job {record['job_id']} {record['state']}")
        if not args.wait:
            return 0
        record = client.wait(record["job_id"], timeout=args.timeout)
        print(f"job {record['job_id']} {record['state']}")
        if record["state"] not in ("done", "degraded"):
            if record.get("error"):
                print(f"error: {record['error']}", file=sys.stderr)
            return 1
        if record["state"] == "degraded":
            print(
                f"warning: shards {record.get('missing_shards')} lost "
                f"(result is partial; resubmit to re-mine them)",
                file=sys.stderr,
            )
        payload = client.result(record["job_id"])
    except ServiceError as error:
        print(f"error: {error.message}", file=sys.stderr)
        return 2
    print(f"{len(payload['clusters'])} reg-cluster(s)")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            _json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"result written to {args.output}")
    return 0


def _cmd_evolve(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError
    from repro.service.jobs import parameters_to_dict

    if args.append_conditions is not None:
        # The file holds only the NEW columns, rows = parent genes; the
        # wire form is one row per new condition (docs/incremental.md).
        block = load_expression_matrix(args.append_conditions)
        delta = {
            "kind": "append_conditions",
            "names": list(block.condition_names),
            "values": [
                [float(v) for v in row] for row in block.values.T
            ],
        }
    elif args.append_genes is not None:
        block = load_expression_matrix(args.append_genes)
        delta = {
            "kind": "append_genes",
            "names": list(block.gene_names),
            "values": [
                [float(v) for v in row] for row in block.values
            ],
        }
    else:
        delta = {"kind": "drop_genes", "genes": list(args.drop_genes)}
    client = ServiceClient(args.url, tenant=args.tenant)
    try:
        envelope = client.submit_revision(
            args.parent_digest,
            delta,
            parameters_to_dict(args.parameters),
            priority=args.priority,
        )
        revision = envelope["revision"]
        record = envelope["job"]
        print(
            f"revision {revision['parent_digest'][:12]}... "
            f"--{delta['kind']}--> {revision['child_digest'][:12]}..."
        )
        print(f"job {record['job_id']} {record['state']}")
        if not args.wait:
            return 0
        record = client.wait(record["job_id"], timeout=args.timeout)
        print(f"job {record['job_id']} {record['state']}")
        if record["state"] not in ("done", "degraded"):
            if record.get("error"):
                print(f"error: {record['error']}", file=sys.stderr)
            return 1
        reused = record.get("reused_shards") or []
        print(
            f"reused {len(reused)} shard(s) from parent job "
            f"{record.get('revision_parent')}"
            if reused
            else "no shards reused (delta dirtied every shard, or the "
            "parent job was unavailable)"
        )
    except ServiceError as error:
        print(f"error: {error.message}", file=sys.stderr)
        return 2
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.job_id is None:
            records = client.list_jobs()
            if not records:
                print("no jobs")
            for record in records:
                print(f"{record['job_id']}  {record['state']}")
            return 0
        record = client.status(args.job_id)
    except ServiceError as error:
        print(f"error: {error.message}", file=sys.stderr)
        return 2
    for key in ("job_id", "state", "priority", "tenant", "matrix_digest",
                "submitted_at", "started_at", "finished_at", "error",
                "index_cache_hit", "kernel_cache_hit", "result_cache_hit",
                "missing_shards", "resumed_shards", "reused_shards",
                "shard_failures", "revision_parent", "kernel_build",
                "sweep_id"):
        value = record.get(key)
        if value is not None:
            print(f"{key}: {value}")
    for key, value in sorted(record.get("progress", {}).items()):
        print(f"progress.{key}: {value}")
    for key, seconds in sorted((record.get("phase_timers") or {}).items()):
        print(f"phase.{key}: {seconds:.3f}s")
    print(f"parameters: {record.get('parameters')}")
    if args.stats:
        # Incremental reuse breakdown (docs/incremental.md): how many
        # shards were stitched from the parent job vs actually mined,
        # and whether the kernel came from cache, a delta update, or a
        # cold build.
        reused = record.get("reused_shards") or []
        provenance = record.get("shard_provenance") or {}
        if record.get("revision_parent") or reused:
            mined = sum(
                1
                for info in provenance.values()
                if info.get("node") not in (None, "parent")
            )
            print(f"reuse.shards_reused: {len(reused)}")
            print(f"reuse.shards_mined: {mined}")
            print(f"reuse.parent_job: {record.get('revision_parent')}")
        if record.get("kernel_build") is not None:
            print(f"reuse.kernel_build: {record['kernel_build']}")
        # Per-shard provenance: which node (or "local"/"checkpoint"/
        # "parent") mined each shard, and in how many attempts —
        # populated for fleet and non-fleet jobs alike
        # (docs/distributed.md).
        for shard, info in sorted(
            provenance.items(), key=lambda item: int(item[0])
        ):
            print(
                f"shard.{shard}: node={info.get('node')} "
                f"attempts={info.get('attempts')}"
            )
    if args.stats and record["state"] in ("done", "degraded"):
        # Degraded jobs have a (partial) payload too — its statistics
        # plus the missing_shards line above tell the whole story.
        try:
            payload = client.result(args.job_id)
        except ServiceError as error:
            print(f"error: {error.message}", file=sys.stderr)
            return 2
        for key, value in sorted(payload.get("statistics", {}).items()):
            print(f"statistics.{key}: {value}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.trace import load_spans, summarize_trace

    # Unknown subcommands cannot reach here (argparse enforces the
    # choices), so this dispatch has exactly one arm for now.
    assert args.trace_command == "summary"
    print(summarize_trace(load_spans(args.path)))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command in ("mine", "submit", "evolve"):
        # Satellite fix: reject out-of-range MinG/MinC/gamma/epsilon with
        # a usage error *before* touching the matrix file.
        try:
            args.parameters = _validated_parameters(parser, args)
        except SystemExit as exit_:
            return exit_.code if isinstance(exit_.code, int) else 2
    handlers = {
        "mine": _cmd_mine,
        "generate": _cmd_generate,
        "rwave": _cmd_rwave,
        "sweep": _cmd_sweep,
        "validate": _cmd_validate,
        "profile": _cmd_profile,
        "experiment": _cmd_experiment,
        "describe": _cmd_describe,
        "serve": _cmd_serve,
        "node": _cmd_node,
        "submit": _cmd_submit,
        "evolve": _cmd_evolve,
        "status": _cmd_status,
        "trace": _cmd_trace,
    }
    try:
        return handlers[args.command](args)
    except (ValueError, KeyError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
