"""Datasets: the paper's running example, synthetic generator, yeast surrogate."""

from repro.datasets.noise import add_dropout, add_gaussian_noise, permute_cells
from repro.datasets.running_example import (
    RUNNING_EXAMPLE_VALUES,
    load_running_example,
)
from repro.datasets.synthetic import (
    SyntheticConfig,
    SyntheticDataset,
    make_synthetic_dataset,
)
from repro.datasets.yeast import (
    DEFAULT_MODULES,
    REPORTED_MODULE_NAMES,
    YEAST_SHAPE,
    YeastModule,
    YeastSurrogate,
    make_yeast_surrogate,
)

__all__ = [
    "add_gaussian_noise",
    "add_dropout",
    "permute_cells",
    "load_running_example",
    "RUNNING_EXAMPLE_VALUES",
    "SyntheticConfig",
    "SyntheticDataset",
    "make_synthetic_dataset",
    "YeastModule",
    "YeastSurrogate",
    "YEAST_SHAPE",
    "DEFAULT_MODULES",
    "REPORTED_MODULE_NAMES",
    "make_yeast_surrogate",
]
