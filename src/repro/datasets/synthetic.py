"""Synthetic dataset generator (paper section 5, efficiency experiments).

The paper's generator takes three inputs — number of genes ``#g``, number
of conditions ``#cond`` and number of embedded clusters ``#clus`` — fills
the matrix with uniform random values in ``[0, 10]`` and then embeds
``#clus`` *perfect* shifting-and-scaling clusters (reg-clusters with
``epsilon = 0`` and regulation threshold ``gamma = 0.15``) of average
dimensionality 6 whose average gene count (p-members plus n-members) is
``0.01 * #g``.

Embedding construction
----------------------
Every member gene of a cluster receives, on the cluster's conditions,
values *equally spaced* across a gene-specific span that strictly contains
the background range — ascending along the cluster's chain for p-members,
descending for n-members.  Equally spaced profiles over the same condition
order are exact affine transforms of one another (perfect coherence,
``epsilon = 0``), the random span endpoints give every gene its own
scaling and shifting factor, and because the span contains the background
range, each adjacent step is exactly ``1 / (k - 1)`` of the gene's whole
expression range — strictly above ``gamma`` whenever ``k - 1 < 1/gamma``
(the generator enforces this feasibility bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.cluster import RegCluster
from repro.matrix.expression import ExpressionMatrix

__all__ = ["SyntheticConfig", "SyntheticDataset", "make_synthetic_dataset"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Inputs of the paper's data generator, plus reproducibility extras.

    The three paper knobs keep their defaults (``#g = 3000``,
    ``#cond = 30``, ``#clus = 30``); everything else mirrors the prose of
    section 5.
    """

    n_genes: int = 3000
    n_conditions: int = 30
    n_clusters: int = 30
    #: average number of conditions per embedded cluster ("average
    #: dimensionality 6"); actual sizes are drawn from
    #: ``avg_dimensionality ± dimensionality_jitter``.
    avg_dimensionality: int = 6
    dimensionality_jitter: int = 1
    #: average member-gene count as a fraction of ``n_genes`` (0.01 in
    #: the paper).
    gene_fraction: float = 0.01
    #: fraction of each cluster's members embedded as n-members
    #: (negatively correlated genes).
    negative_fraction: float = 0.3
    #: regulation threshold the embedded clusters are guaranteed to
    #: satisfy (0.15 in the paper).
    embed_gamma: float = 0.15
    #: background values are uniform in ``[0, background_high]``.
    background_high: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_genes < 1 or self.n_conditions < 2 or self.n_clusters < 0:
            raise ValueError("n_genes >= 1, n_conditions >= 2, n_clusters >= 0")
        if not 0.0 < self.gene_fraction <= 1.0:
            raise ValueError("gene_fraction must be in (0, 1]")
        if not 0.0 <= self.negative_fraction < 1.0:
            raise ValueError("negative_fraction must be in [0, 1)")
        if not 0.0 < self.embed_gamma < 1.0:
            raise ValueError("embed_gamma must be in (0, 1)")
        max_dim = self.avg_dimensionality + self.dimensionality_jitter
        if max_dim < 2:
            raise ValueError("cluster dimensionality must be at least 2")
        if max_dim > self.n_conditions:
            raise ValueError(
                f"cluster dimensionality {max_dim} exceeds "
                f"{self.n_conditions} conditions"
            )
        # Feasibility: with k equally spaced values spanning the gene's
        # range, each step is range/(k-1); it must exceed embed_gamma *
        # range.
        if (max_dim - 1) * self.embed_gamma >= 1.0:
            raise ValueError(
                f"dimensionality {max_dim} cannot satisfy "
                f"gamma={self.embed_gamma}: need (k-1) * gamma < 1"
            )


@dataclass(frozen=True)
class SyntheticDataset:
    """A generated matrix with its embedded ground truth."""

    matrix: ExpressionMatrix
    embedded: Tuple[RegCluster, ...]
    config: SyntheticConfig

    @property
    def n_embedded(self) -> int:
        return len(self.embedded)


def _draw_cluster_shapes(
    rng: np.random.Generator, config: SyntheticConfig
) -> List[Tuple[int, int, int]]:
    """Per cluster: (n_conditions, n_p_members, n_n_members)."""
    shapes: List[Tuple[int, int, int]] = []
    avg_members = max(int(round(config.gene_fraction * config.n_genes)), 2)
    low_dim = max(2, config.avg_dimensionality - config.dimensionality_jitter)
    high_dim = config.avg_dimensionality + config.dimensionality_jitter
    for _ in range(config.n_clusters):
        k = int(rng.integers(low_dim, high_dim + 1))
        members = max(int(rng.integers(avg_members - 1, avg_members + 2)), 2)
        n_n = int(round(members * config.negative_fraction))
        n_p = members - n_n
        if n_p <= n_n:  # keep the embedded orientation representative
            n_p, n_n = n_n + 1, max(n_p - 1, 0)
        shapes.append((k, n_p, n_n))
    return shapes


def make_synthetic_dataset(
    config: Optional[SyntheticConfig] = None, **overrides: object
) -> SyntheticDataset:
    """Generate a matrix with embedded perfect shifting-and-scaling clusters.

    Keyword overrides are applied on top of ``config`` (or the defaults),
    e.g. ``make_synthetic_dataset(n_genes=500, seed=7)``.

    The embedded ground truth is returned as
    :class:`~repro.core.cluster.RegCluster` objects whose chains are the
    representative orientation (p-members ascend along the chain).

    >>> data = make_synthetic_dataset(n_genes=100, n_conditions=12,
    ...                               n_clusters=2, seed=1)
    >>> data.matrix.shape
    (100, 12)
    >>> data.n_embedded
    2
    """
    if config is None:
        config = SyntheticConfig()
    if overrides:
        config = SyntheticConfig(
            **{**config.__dict__, **overrides}  # type: ignore[arg-type]
        )
    rng = np.random.default_rng(config.seed)

    values = rng.uniform(0.0, config.background_high,
                         size=(config.n_genes, config.n_conditions))
    shapes = _draw_cluster_shapes(rng, config)

    # Gene sets are sampled without global replacement so the ground
    # truth is unambiguous; fail loudly when the matrix is too small.
    total_members = sum(p + n for _, p, n in shapes)
    if total_members > config.n_genes:
        raise ValueError(
            f"embedding needs {total_members} distinct genes but the "
            f"matrix has only {config.n_genes}; lower n_clusters or "
            f"gene_fraction"
        )
    gene_pool = rng.permutation(config.n_genes)
    next_gene = 0

    embedded: List[RegCluster] = []
    for k, n_p, n_n in shapes:
        conditions = rng.choice(config.n_conditions, size=k, replace=False)
        chain = tuple(int(c) for c in conditions)
        members = gene_pool[next_gene : next_gene + n_p + n_n]
        next_gene += n_p + n_n
        p_members = members[:n_p]
        n_members = members[n_p:]

        ramp = np.linspace(0.0, 1.0, k)
        for gene in p_members:
            lo = float(rng.uniform(-5.0, -0.5))
            hi = float(rng.uniform(config.background_high + 0.5,
                                   config.background_high + 10.0))
            values[gene, list(chain)] = lo + (hi - lo) * ramp
        for gene in n_members:
            lo = float(rng.uniform(-5.0, -0.5))
            hi = float(rng.uniform(config.background_high + 0.5,
                                   config.background_high + 10.0))
            values[gene, list(chain)] = hi + (lo - hi) * ramp

        embedded.append(
            RegCluster(
                chain=chain,
                p_members=tuple(int(g) for g in p_members),
                n_members=tuple(int(g) for g in n_members),
            )
        )

    matrix = ExpressionMatrix(values)
    return SyntheticDataset(matrix=matrix, embedded=tuple(embedded), config=config)
