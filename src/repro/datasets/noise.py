"""Noise injection for robustness experiments.

The paper embeds *perfect* clusters (``epsilon = 0``); real microarray
measurements are noisy, and the coherence threshold epsilon exists
precisely to absorb that.  This module perturbs matrices in controlled
ways so the robustness benchmark can chart recovery as a function of
noise level against epsilon:

* :func:`add_gaussian_noise` — i.i.d. Gaussian measurement noise scaled
  per gene;
* :func:`add_dropout` — replace a fraction of cells with background
  values (failed spots);
* :func:`permute_cells` — destroy structure entirely (the null control).
"""

from __future__ import annotations

import numpy as np

from repro.matrix.expression import ExpressionMatrix

__all__ = ["add_gaussian_noise", "add_dropout", "permute_cells"]


def add_gaussian_noise(
    matrix: ExpressionMatrix,
    level: float,
    *,
    seed: int = 0,
    relative: bool = True,
) -> ExpressionMatrix:
    """Add zero-mean Gaussian noise.

    With ``relative=True`` (default) each gene's noise sigma is ``level *
    range(gene)``, matching how the regulation threshold scales; with
    ``relative=False`` the sigma is ``level`` absolute units everywhere.
    """
    if level < 0:
        raise ValueError("noise level must be >= 0")
    rng = np.random.default_rng(seed)
    values = matrix.values
    if relative:
        sigma = level * matrix.gene_ranges()[:, None]
    else:
        sigma = np.full((matrix.n_genes, 1), float(level))
    noisy = values + rng.normal(0.0, 1.0, size=values.shape) * sigma
    return ExpressionMatrix(
        noisy, matrix.gene_names, matrix.condition_names
    )


def add_dropout(
    matrix: ExpressionMatrix, fraction: float, *, seed: int = 0
) -> ExpressionMatrix:
    """Replace a random fraction of cells with per-gene median values.

    Mimics failed microarray spots imputed by a naive pipeline — the
    affected cells lose all signal but stay within the gene's usual
    range.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    values = np.array(matrix.values, copy=True)
    mask = rng.random(values.shape) < fraction
    medians = np.median(values, axis=1, keepdims=True)
    values[mask] = np.broadcast_to(medians, values.shape)[mask]
    return ExpressionMatrix(
        values, matrix.gene_names, matrix.condition_names
    )


def permute_cells(matrix: ExpressionMatrix, *, seed: int = 0) -> ExpressionMatrix:
    """Shuffle every gene's values across conditions independently.

    Preserves each gene's value distribution (and therefore its
    regulation threshold) while destroying all condition alignment — the
    null model for "how many clusters appear by chance".
    """
    rng = np.random.default_rng(seed)
    values = np.array(matrix.values, copy=True)
    for row in values:
        rng.shuffle(row)
    return ExpressionMatrix(
        values, matrix.gene_names, matrix.condition_names
    )
