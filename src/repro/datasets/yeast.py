"""Surrogate of the benchmark yeast dataset (paper section 5.2).

The paper's effectiveness study runs on the Tavazoie et al. 2D yeast
dataset — 2884 genes x 17 conditions, distributed from
``arep.med.harvard.edu/biclustering/``.  That file cannot be fetched in an
offline environment, so this module builds a *surrogate* of identical
shape: heterogeneous per-gene background (every gene gets its own baseline
level and dynamic range, mimicking the orders-of-magnitude sensitivity
differences the paper cites) with a set of embedded co-regulated
*modules*.  Each module mixes positively and negatively correlated member
genes under a subset of conditions, exactly the structure reg-cluster is
designed to find, and is named after a biological process so the GO
substrate (:mod:`repro.eval.go`) can annotate its genes consistently —
which is what lets the Table 2 experiment run end-to-end.

The default modules are sized so that mining with the paper's parameters
(``MinG=20, MinC=6, gamma=0.05, epsilon=1.0``) recovers them among a
handful of overlapping clusters, reproducing the shape of the Figure 8 /
Table 2 results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cluster import RegCluster
from repro.matrix.expression import ExpressionMatrix

__all__ = [
    "YeastModule",
    "YeastSurrogate",
    "DEFAULT_MODULES",
    "REPORTED_MODULE_NAMES",
    "make_yeast_surrogate",
]

#: Shape of the Tavazoie benchmark matrix.
YEAST_SHAPE = (2884, 17)


@dataclass(frozen=True)
class YeastModule:
    """Specification of one embedded co-regulation module.

    ``process`` / ``function`` / ``component`` name the GO terms the
    module's genes will be annotated with (matching the three namespaces
    of the paper's Table 2).
    """

    name: str
    process: str
    function: str
    component: str
    n_p_members: int = 14
    n_n_members: int = 7
    n_conditions: int = 6

    @property
    def n_members(self) -> int:
        return self.n_p_members + self.n_n_members


#: The three modules the paper reports in Table 2, plus extra modules so
#: the mined clusters overlap (the paper reports 0-85% overlaps among 21
#: clusters) and the three reported ones are non-overlapping.
DEFAULT_MODULES: Tuple[YeastModule, ...] = (
    YeastModule(
        name="dna_replication",
        process="DNA replication",
        function="DNA-directed DNA polymerase activity",
        component="replication fork",
    ),
    YeastModule(
        name="protein_biosynthesis",
        process="protein biosynthesis",
        function="structural constituent of ribosome",
        component="cytosolic ribosome",
    ),
    YeastModule(
        name="cytoplasm_organization",
        process="cytoplasm organization and biogenesis",
        function="helicase activity",
        component="ribonucleoprotein complex",
    ),
    YeastModule(
        name="stress_response",
        process="response to stress",
        function="chaperone activity",
        component="cytoplasm",
        n_p_members=16,
        n_n_members=8,
        n_conditions=6,
    ),
    YeastModule(
        name="cell_cycle",
        process="mitotic cell cycle",
        function="cyclin-dependent protein kinase activity",
        component="nucleus",
        n_p_members=15,
        n_n_members=7,
        n_conditions=7,
    ),
    YeastModule(
        name="amino_acid_metabolism",
        process="amino acid metabolic process",
        function="transaminase activity",
        component="mitochondrion",
        n_p_members=14,
        n_n_members=8,
        n_conditions=6,
    ),
)

#: The three modules reported in the paper's Table 2 / Figure 8.
REPORTED_MODULE_NAMES: Tuple[str, ...] = (
    "dna_replication",
    "protein_biosynthesis",
    "cytoplasm_organization",
)


@dataclass(frozen=True)
class YeastSurrogate:
    """The surrogate matrix plus its embedded module ground truth."""

    matrix: ExpressionMatrix
    modules: Tuple[YeastModule, ...]
    embedded: Tuple[RegCluster, ...]
    #: gene index -> module name, for genes belonging to a module.
    gene_modules: Dict[int, str]

    def module_cluster(self, name: str) -> RegCluster:
        """The embedded ground-truth cluster of a named module."""
        for module, cluster in zip(self.modules, self.embedded):
            if module.name == name:
                return cluster
        raise KeyError(f"unknown module {name!r}")


def make_yeast_surrogate(
    modules: Optional[Sequence[YeastModule]] = None,
    *,
    shape: Tuple[int, int] = YEAST_SHAPE,
    seed: int = 20060403,
    embed_gamma: float = 0.12,
) -> YeastSurrogate:
    """Build the deterministic yeast surrogate.

    Parameters
    ----------
    modules:
        Module specifications; defaults to :data:`DEFAULT_MODULES`.
    shape:
        Matrix shape, the Tavazoie 2884 x 17 by default.
    seed:
        RNG seed; the default yields the matrix the benchmarks report on.
    embed_gamma:
        Regulation level the embedded modules are guaranteed to satisfy
        (each embedded step exceeds this fraction of the member gene's
        full expression range).  Must satisfy
        ``(max module conditions - 1) * embed_gamma < 1``.

    Notes
    -----
    Background: gene ``g`` has baseline ``b_g`` (log-normal across genes)
    and dynamic range ``r_g``; its background values are uniform in
    ``[b_g, b_g + r_g]``.  Members of a module get equally spaced values
    across a span containing their background interval — ascending along
    the module's chain for p-members, descending for n-members — giving
    every member its own scaling and shifting factor while keeping the
    module a perfect reg-cluster.
    """
    if modules is None:
        modules = DEFAULT_MODULES
    n_genes, n_conditions = shape
    max_k = max((m.n_conditions for m in modules), default=2)
    if (max_k - 1) * embed_gamma >= 1.0:
        raise ValueError(
            f"embed_gamma={embed_gamma} infeasible for modules with "
            f"{max_k} conditions"
        )
    total_members = sum(m.n_members for m in modules)
    if total_members > n_genes:
        raise ValueError("modules need more genes than the matrix has")
    if max_k > n_conditions:
        raise ValueError("a module has more conditions than the matrix")

    rng = np.random.default_rng(seed)
    baselines = rng.lognormal(mean=2.0, sigma=0.8, size=n_genes)
    ranges = rng.lognormal(mean=1.5, sigma=0.6, size=n_genes) + 1.0
    values = baselines[:, None] + rng.uniform(
        0.0, 1.0, size=(n_genes, n_conditions)
    ) * ranges[:, None]

    gene_pool = rng.permutation(n_genes)
    next_gene = 0
    embedded: List[RegCluster] = []
    gene_modules: Dict[int, str] = {}

    for module in modules:
        k = module.n_conditions
        chain = tuple(
            int(c) for c in rng.choice(n_conditions, size=k, replace=False)
        )
        members = gene_pool[next_gene : next_gene + module.n_members]
        next_gene += module.n_members
        p_members = members[: module.n_p_members]
        n_members = members[module.n_p_members :]
        ramp = np.linspace(0.0, 1.0, k)

        for gene in members:
            gene_modules[int(gene)] = module.name
        for gene in p_members:
            lo = float(baselines[gene] - rng.uniform(1.0, 3.0) * ranges[gene])
            hi = float(
                baselines[gene] + rng.uniform(2.0, 4.0) * ranges[gene]
            )
            values[gene, list(chain)] = lo + (hi - lo) * ramp
        for gene in n_members:
            lo = float(baselines[gene] - rng.uniform(1.0, 3.0) * ranges[gene])
            hi = float(
                baselines[gene] + rng.uniform(2.0, 4.0) * ranges[gene]
            )
            values[gene, list(chain)] = hi + (lo - hi) * ramp

        embedded.append(
            RegCluster(
                chain=chain,
                p_members=tuple(int(g) for g in p_members),
                n_members=tuple(int(g) for g in n_members),
            )
        )

    matrix = ExpressionMatrix(
        values,
        gene_names=[f"YGENE{i + 1:04d}" for i in range(n_genes)],
        condition_names=[f"ch{j + 1}" for j in range(n_conditions)],
    )
    return YeastSurrogate(
        matrix=matrix,
        modules=tuple(modules),
        embedded=tuple(embedded),
        gene_modules=gene_modules,
    )
