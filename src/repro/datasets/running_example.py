"""The paper's running dataset (Table 1).

Three genes, ten conditions.  Every worked example in the paper — the
RWave^0.15 models of Figure 3, the shifting-and-scaling cluster of
Figure 2, the outlier of Figure 4 and the enumeration tree of Figure 6 —
is computed on this matrix, so the test suite pins all of those numbers
against it.
"""

from __future__ import annotations

from repro.matrix.expression import ExpressionMatrix

__all__ = ["load_running_example", "RUNNING_EXAMPLE_VALUES"]

#: Table 1 of the paper, rows g1..g3, columns c1..c10.
RUNNING_EXAMPLE_VALUES = (
    (10.0, -14.5, 15.0, 10.5, 0.0, 14.5, -15.0, 0.0, -5.0, -5.0),
    (20.0, 15.0, 15.0, 43.5, 30.0, 44.0, 45.0, 43.0, 35.0, 20.0),
    (6.0, -3.8, 8.0, 6.2, 2.0, 7.8, -4.0, 2.0, 0.0, 0.0),
)


def load_running_example() -> ExpressionMatrix:
    """Table 1 as an :class:`~repro.matrix.expression.ExpressionMatrix`.

    >>> m = load_running_example()
    >>> m.shape
    (3, 10)
    >>> m.value("g2", "c7")
    45.0
    """
    return ExpressionMatrix(
        RUNNING_EXAMPLE_VALUES,
        gene_names=[f"g{i}" for i in range(1, 4)],
        condition_names=[f"c{j}" for j in range(1, 11)],
    )
