"""Experiment drivers — one module per paper table/figure.

The benchmark suite (``benchmarks/``) and the ``reg-cluster experiment``
CLI subcommand are thin wrappers around these drivers; importing them
directly lets a notebook or downstream pipeline regenerate any paper
result programmatically:

>>> from repro.experiments import run_figure1
>>> run_figure1().reg_cluster_groups_all
True
"""

from repro.experiments.fig7 import (
    Figure7Result,
    PAPER_SWEEPS,
    QUICK_SWEEPS,
    run_figure7,
)
from repro.experiments.fig8 import (
    PAPER_YEAST_PARAMETERS,
    Figure8Cluster,
    Figure8Result,
    count_crossovers,
    run_figure8,
)
from repro.experiments.model_comparison import (
    Figure1Result,
    Figure2Result,
    Figure4Result,
    figure1_patterns,
    run_figure1,
    run_figure2,
    run_figure4,
)
from repro.experiments.table2 import (
    PAPER_TABLE2_TEXT,
    Table2Result,
    Table2Row,
    run_table2,
)

__all__ = [
    "run_figure1",
    "run_figure2",
    "run_figure4",
    "run_figure7",
    "run_figure8",
    "run_table2",
    "Figure1Result",
    "Figure2Result",
    "Figure4Result",
    "Figure7Result",
    "Figure8Result",
    "Figure8Cluster",
    "Table2Result",
    "Table2Row",
    "figure1_patterns",
    "count_crossovers",
    "PAPER_SWEEPS",
    "QUICK_SWEEPS",
    "PAPER_YEAST_PARAMETERS",
    "PAPER_TABLE2_TEXT",
]
