"""Experiment driver for Table 2 — GO term enrichment.

Takes a Figure 8 run (or performs one), locates the mined cluster best
matching each of the three modules the paper reports, and scores them
against the simulated GO annotation corpus with the hypergeometric term
finder — regenerating the paper's three-namespace table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.cluster import RegCluster
from repro.datasets.yeast import REPORTED_MODULE_NAMES
from repro.eval.go.annotation import AnnotationCorpus, annotate_surrogate
from repro.eval.go.enrichment import TermEnrichment, go_table, top_terms_by_namespace
from repro.eval.go.ontology import NAMESPACES
from repro.eval.match import best_match
from repro.experiments.fig8 import Figure8Result, run_figure8

__all__ = ["Table2Row", "Table2Result", "run_table2", "PAPER_TABLE2_TEXT"]

#: The paper's Table 2, verbatim, for side-by-side reports.
PAPER_TABLE2_TEXT = """\
(paper) c1^2 : DNA replication (p=3.64e-07) | DNA-directed DNA polymerase
               activity (p=0.01586) | replication fork (p=0.00019)
(paper) c3^2 : protein biosynthesis (p=0.00016) | structural constituent
               of ribosome (p=1.45e-07) | cytosolic ribosome (p=1.44e-08)
(paper) c13^2: cytoplasm organization and biogenesis (p=5.72e-05) |
               helicase activity (p=0.00175) | ribonucleoprotein complex
               (p=0.0002)"""


@dataclass(frozen=True)
class Table2Row:
    """One cluster's top term per namespace."""

    module_name: str
    cluster: RegCluster
    match_jaccard: float
    top_terms: Dict[str, Optional[TermEnrichment]]

    def p_values(self) -> List[float]:
        return [
            entry.p_value
            for entry in self.top_terms.values()
            if entry is not None
        ]


@dataclass(frozen=True)
class Table2Result:
    """The regenerated Table 2."""

    rows: Tuple[Table2Row, ...]
    corpus: AnnotationCorpus

    def render(self) -> str:
        table = go_table(
            [row.cluster for row in self.rows],
            self.corpus,
            labels=[row.module_name for row in self.rows],
        )
        return "\n".join(
            [PAPER_TABLE2_TEXT, "", "(measured, on the surrogate corpus)",
             table]
        )


def run_table2(
    figure8: Optional[Figure8Result] = None,
    *,
    shape: Tuple[int, int] = (2884, 17),
    annotation_seed: int = 7,
) -> Table2Result:
    """Regenerate Table 2 (running Figure 8 first if needed).

    Raises
    ------
    LookupError
        If some reported module has no mined counterpart at Jaccard
        above 0.5 — a sign the mining step went wrong.
    """
    if figure8 is None:
        figure8 = run_figure8(shape=shape)
    surrogate = figure8.surrogate
    corpus = annotate_surrogate(surrogate, seed=annotation_seed)

    rows: List[Table2Row] = []
    for name in REPORTED_MODULE_NAMES:
        truth = surrogate.module_cluster(name)
        found, score = best_match(truth, figure8.mining.clusters)
        if found is None or score <= 0.5:
            raise LookupError(
                f"no mined cluster matches module {name!r} "
                f"(best Jaccard {score:.2f})"
            )
        rows.append(
            Table2Row(
                module_name=name,
                cluster=found,
                match_jaccard=score,
                top_terms=dict(top_terms_by_namespace(found, corpus)),
            )
        )
    return Table2Result(rows=tuple(rows), corpus=corpus)


def namespaces() -> Tuple[str, ...]:
    """The three Table 2 namespaces, in column order."""
    return NAMESPACES
