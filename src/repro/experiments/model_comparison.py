"""Experiment drivers for Figures 1, 2 and 4 — model comparisons.

The paper motivates the reg-cluster model with three small comparisons:

* **Figure 1** — six patterns related by shifting *and* scaling that no
  previous pattern-based model can group simultaneously;
* **Figure 2** — the running example's cluster with a negatively
  correlated member;
* **Figure 4** — an outlier the tendency models wrongly accept.

Each driver returns a typed result object with a ``render()`` method;
the benchmark suite asserts on the fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.baselines.pcluster import is_pcluster
from repro.baselines.tendency import mine_tendency_clusters
from repro.baselines.tricluster import is_scaling_cluster
from repro.bench.report import ascii_table
from repro.core.coherence import is_shifting_and_scaling
from repro.core.miner import MiningParameters, RegClusterMiner
from repro.core.validate import check_chain
from repro.datasets.running_example import load_running_example
from repro.matrix.expression import ExpressionMatrix

__all__ = [
    "figure1_patterns",
    "Figure1Result",
    "run_figure1",
    "Figure2Result",
    "run_figure2",
    "Figure4Result",
    "run_figure4",
]


def figure1_patterns() -> ExpressionMatrix:
    """The six Figure 1 patterns: P1 = P2-5 = P3-15 = P4 = P5/1.5 = P6/3."""
    p1 = np.array([10.0, 14.0, 9.0, 18.0, 25.0])
    rows = {
        "P1": p1,
        "P2": p1 + 5.0,
        "P3": p1 + 15.0,
        "P4": p1.copy(),
        "P5": 1.5 * p1,
        "P6": 3.0 * p1,
    }
    return ExpressionMatrix(
        np.vstack(list(rows.values())), gene_names=list(rows)
    )


@dataclass(frozen=True)
class Figure1Result:
    """Which model groups which Figure 1 subfamily."""

    shifting_groups_subfamily: bool
    shifting_groups_all: bool
    scaling_groups_subfamily: bool
    scaling_groups_all: bool
    reg_cluster_groups_all: bool

    def render(self) -> str:
        rows = [
            ["pCluster / delta-cluster (pure shifting)",
             self.shifting_groups_subfamily, self.shifting_groups_all],
            ["TriCluster (pure scaling)",
             self.scaling_groups_subfamily, self.scaling_groups_all],
            ["reg-cluster (shifting-and-scaling)",
             True, self.reg_cluster_groups_all],
        ]
        return ascii_table(
            ["model", "groups its own subfamily", "groups all six"], rows
        )


def run_figure1() -> Figure1Result:
    """Evaluate the three models on the Figure 1 pattern family."""
    matrix = figure1_patterns()
    stack = matrix.values
    return Figure1Result(
        shifting_groups_subfamily=is_pcluster(stack[:4], 1e-9),
        shifting_groups_all=is_pcluster(stack, 1e-9),
        scaling_groups_subfamily=is_scaling_cluster(
            stack[[0, 3, 4, 5]], 1e-9
        ),
        scaling_groups_all=is_scaling_cluster(stack, 1e-9),
        reg_cluster_groups_all=all(
            is_shifting_and_scaling(stack[0], stack[k])
            for k in range(1, stack.shape[0])
        ),
    )


@dataclass(frozen=True)
class Figure2Result:
    """The negative-correlation comparison on the running example."""

    shifting_accepts: bool
    scaling_accepts: bool
    memberships: Dict[str, str]  # gene name -> 'p' / 'n' / 'none'

    def render(self) -> str:
        member_text = " ".join(
            f"{gene}={kind}" for gene, kind in self.memberships.items()
        )
        return "\n".join(
            [
                f"pScore model groups all three (delta=2):    "
                f"{self.shifting_accepts}",
                f"ratio-range model groups all three (eps=1): "
                f"{self.scaling_accepts}",
                f"reg-cluster chain membership: {member_text}",
            ]
        )


def run_figure2() -> Figure2Result:
    """Evaluate the models on the Figure 2 cluster conditions."""
    matrix = load_running_example()
    chain = ["c7", "c9", "c5", "c1", "c3"]
    sub = matrix.submatrix(conditions=chain).values
    memberships = {
        gene: check_chain(matrix, gene, chain, 0.15)
        for gene in ("g1", "g2", "g3")
    }
    return Figure2Result(
        shifting_accepts=is_pcluster(sub, 2.0),
        scaling_accepts=is_scaling_cluster(sub, 1.0),
        memberships=memberships,
    )


@dataclass(frozen=True)
class Figure4Result:
    """The outlier comparison on conditions {c2, c4, c8, c10}."""

    tendency_groups_all: bool
    reg_cluster_gene_sets: Tuple[Tuple[int, ...], ...]
    pattern_models_relate_g1_g3: bool

    def render(self) -> str:
        sets = [
            sorted(g + 1 for g in genes)
            for genes in self.reg_cluster_gene_sets
        ]
        return "\n".join(
            [
                f"tendency model groups g1,g2,g3 together: "
                f"{self.tendency_groups_all}",
                f"reg-cluster gene sets found:             {sets}",
                f"pattern-based models relate g1 and g3:   "
                f"{self.pattern_models_relate_g1_g3}",
            ]
        )


def run_figure4() -> Figure4Result:
    """Replay the Figure 4 outlier experiment across the models."""
    matrix = load_running_example()
    sub = matrix.submatrix(conditions=["c2", "c10", "c8", "c4"])
    params = MiningParameters(
        min_genes=2, min_conditions=4, gamma=0.15, epsilon=0.1
    )
    tendency = mine_tendency_clusters(sub, min_genes=3, min_conditions=4)
    reg = RegClusterMiner(sub, params).mine()
    gene_sets: List[Tuple[int, ...]] = [c.genes for c in reg.clusters]
    pattern_13 = is_pcluster(sub.values[[0, 2]], 0.5) or is_scaling_cluster(
        sub.values[[0, 2]], 0.1
    )
    return Figure4Result(
        tendency_groups_all=any(
            set(c.genes) == {0, 1, 2} for c in tendency
        ),
        reg_cluster_gene_sets=tuple(gene_sets),
        pattern_models_relate_g1_g3=pattern_13,
    )
