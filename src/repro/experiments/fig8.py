"""Experiment driver for Figure 8 / section 5.2 — yeast effectiveness.

Mines the yeast surrogate at the paper's parameters (``MinG=20, MinC=6,
gamma=0.05, epsilon=1.0``), collects the quantities the paper reports —
cluster count, runtime, pairwise-overlap range, three non-overlapping
clusters with their p/n member splits, scaling-factor signs and profile
crossovers — and checks the comparison claim that the pure-shifting and
pure-scaling baselines cannot express the mined clusters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.pcluster import max_pscore
from repro.baselines.tricluster import is_scaling_cluster
from repro.bench.report import ascii_table, format_seconds
from repro.core.cluster import RegCluster
from repro.core.miner import MiningParameters, MiningResult, RegClusterMiner
from repro.datasets.yeast import YeastSurrogate, make_yeast_surrogate
from repro.eval.match import best_match
from repro.eval.overlap import OverlapSummary, overlap_summary, select_non_overlapping

__all__ = [
    "PAPER_YEAST_PARAMETERS",
    "Figure8Cluster",
    "Figure8Result",
    "count_crossovers",
    "run_figure8",
]

#: The section 5.2 mining configuration.
PAPER_YEAST_PARAMETERS = MiningParameters(
    min_genes=20, min_conditions=6, gamma=0.05, epsilon=1.0
)


def count_crossovers(block: np.ndarray) -> int:
    """Profile crossovers between gene pairs along the chain order.

    A crossover is a sign change of ``d_i - d_j`` between adjacent chain
    conditions — the visual signature of combined shifting and scaling
    the paper highlights in Figure 8.
    """
    crossings = 0
    n = block.shape[0]
    for i in range(n - 1):
        for j in range(i + 1, n):
            sign = np.sign(block[i] - block[j])
            crossings += int(np.sum(np.abs(np.diff(sign)) == 2))
    return crossings


@dataclass(frozen=True)
class Figure8Cluster:
    """One reported non-overlapping cluster with its derived quantities."""

    cluster: RegCluster
    module_name: str
    match_jaccard: float
    negative_scaling_genes: int
    crossovers: int
    relative_pscore: float
    scaling_model_accepts: bool


@dataclass(frozen=True)
class Figure8Result:
    """Everything the section 5.2 report prints."""

    surrogate: YeastSurrogate
    parameters: MiningParameters
    mining: MiningResult
    seconds: float
    overlap: OverlapSummary
    reported: Tuple[Figure8Cluster, ...]

    @property
    def n_clusters(self) -> int:
        return len(self.mining.clusters)

    def render(self) -> str:
        rows = []
        for index, entry in enumerate(self.reported, start=1):
            rows.append(
                [
                    f"C{index}",
                    f"{entry.cluster.n_genes}x{entry.cluster.n_conditions}",
                    len(entry.cluster.p_members),
                    len(entry.cluster.n_members),
                    entry.negative_scaling_genes,
                    entry.crossovers,
                    f"{entry.relative_pscore:.2f}",
                    entry.scaling_model_accepts,
                    entry.module_name,
                    f"{entry.match_jaccard:.2f}",
                ]
            )
        lines = [
            "paper: 21 clusters in 2.5s (2006 hardware); overlaps 0-85%",
            f"here : {self.n_clusters} clusters in "
            f"{format_seconds(self.seconds)}; max-overlap per cluster "
            f"{self.overlap.min_overlap:.0%}-{self.overlap.max_overlap:.0%}",
            "",
            "non-overlapping bi-reg-clusters "
            "(paper: three, 21 genes x 6 conditions each):",
            ascii_table(
                ["id", "shape", "p", "n", "neg-s1", "crossovers",
                 "pScore/spread", "scaling-ok", "module", "match-J"],
                rows,
            ),
        ]
        return "\n".join(lines)


def _analyze_cluster(
    cluster: RegCluster, result_surrogate: YeastSurrogate
) -> Figure8Cluster:
    matrix = result_surrogate.matrix
    block = cluster.submatrix(matrix).values
    truth, score = best_match(cluster, result_surrogate.embedded)
    module = "?"
    if truth is not None:
        module = result_surrogate.modules[
            result_surrogate.embedded.index(truth)
        ].name
    fits = cluster.affine_fits(matrix)
    spread = float(block.max() - block.min()) or 1.0
    return Figure8Cluster(
        cluster=cluster,
        module_name=module,
        match_jaccard=score,
        negative_scaling_genes=sum(
            1 for fit in fits.values() if fit.scaling < 0
        ),
        crossovers=count_crossovers(block),
        relative_pscore=max_pscore(block) / spread,
        scaling_model_accepts=is_scaling_cluster(block, 1.0),
    )


def run_figure8(
    *,
    surrogate: Optional[YeastSurrogate] = None,
    shape: Tuple[int, int] = (2884, 17),
    parameters: Optional[MiningParameters] = None,
    n_reported: int = 3,
) -> Figure8Result:
    """Run the full section 5.2 experiment.

    Pass a smaller ``shape`` (e.g. ``(600, 17)``) for a quick run; the
    default reproduces the Tavazoie dimensions.
    """
    if surrogate is None:
        surrogate = make_yeast_surrogate(shape=shape)
    if parameters is None:
        parameters = PAPER_YEAST_PARAMETERS

    start = time.perf_counter()
    mining = RegClusterMiner(surrogate.matrix, parameters).mine()
    seconds = time.perf_counter() - start

    picks = select_non_overlapping(mining.clusters, limit=n_reported)
    reported: List[Figure8Cluster] = [
        _analyze_cluster(cluster, surrogate) for cluster in picks
    ]
    return Figure8Result(
        surrogate=surrogate,
        parameters=parameters,
        mining=mining,
        seconds=seconds,
        overlap=overlap_summary(mining.clusters),
        reported=tuple(reported),
    )
