"""Experiment driver for Figure 7 — efficiency on synthetic datasets.

Runs the paper's three scalability sweeps (runtime vs ``#g``, ``#cond``
and ``#clus`` with the other two generator parameters at their defaults)
and renders the series.  The benchmark in ``benchmarks/`` and the CLI's
``experiment fig7`` subcommand are both thin wrappers over
:func:`run_figure7`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.bench.report import ascii_series
from repro.bench.runner import SweepResult, run_sweep
from repro.datasets.synthetic import SyntheticConfig

__all__ = ["Figure7Result", "run_figure7", "PAPER_SWEEPS", "QUICK_SWEEPS"]

#: Sweep ranges at the paper's dataset sizes.
PAPER_SWEEPS: Dict[str, Sequence[int]] = {
    "n_genes": (1000, 2000, 3000, 4000, 5000),
    "n_conditions": (20, 25, 30, 35, 40),
    "n_clusters": (10, 20, 30, 40, 50),
}

#: Reduced ranges for quick runs / tests.
QUICK_SWEEPS: Dict[str, Sequence[int]] = {
    "n_genes": (200, 400, 600),
    "n_conditions": (12, 16, 20),
    "n_clusters": (2, 6, 10),
}

#: Expected curve shapes, straight from the paper's section 5.1.
EXPECTED_SHAPES = {
    "n_genes": "slightly more than linear in #g",
    "n_conditions": "super-linear in #cond (worst of the three)",
    "n_clusters": "approximately linear in #clus",
}


@dataclass(frozen=True)
class Figure7Result:
    """The three sweeps of Figure 7."""

    sweeps: Dict[str, SweepResult]

    def growth_ratio(self, parameter: str) -> float:
        """Runtime growth normalized by parameter growth (1.0 = linear)."""
        sweep = self.sweeps[parameter]
        seconds = sweep.seconds()
        values = sweep.values()
        time_ratio = seconds[-1] / max(seconds[0], 1e-9)
        value_ratio = values[-1] / values[0]
        return time_ratio / value_ratio

    def render(self) -> str:
        """All three panels as ASCII bar series."""
        blocks: List[str] = []
        for parameter, sweep in self.sweeps.items():
            blocks.append(
                ascii_series(
                    f"Figure 7: average runtime vs {parameter}",
                    sweep.values(),
                    sweep.seconds(),
                    unit="s",
                )
            )
            blocks.append(f"  expected: {EXPECTED_SHAPES[parameter]}")
            blocks.append("")
        return "\n".join(blocks).rstrip()


def run_figure7(
    *,
    scale: str = "paper",
    base_config: "SyntheticConfig | None" = None,
    repeats: int = 1,
) -> Figure7Result:
    """Run all three Figure 7 sweeps.

    ``scale`` is ``"paper"`` (generator defaults 3000 x 30 x 30) or
    ``"quick"``; a custom ``base_config`` overrides the center point.
    """
    if scale == "paper":
        sweeps_spec = PAPER_SWEEPS
        config = base_config if base_config is not None else SyntheticConfig()
    elif scale == "quick":
        sweeps_spec = QUICK_SWEEPS
        config = base_config if base_config is not None else SyntheticConfig(
            n_genes=400, n_conditions=16, n_clusters=6
        )
    else:
        raise ValueError(f"scale must be 'paper' or 'quick', got {scale!r}")

    sweeps: Dict[str, SweepResult] = {}
    for parameter, values in sweeps_spec.items():
        sweeps[parameter] = run_sweep(
            parameter, values, base_config=config, repeats=repeats
        )
    return Figure7Result(sweeps=sweeps)
