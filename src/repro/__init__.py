"""reg-cluster: shifting-and-scaling co-regulation pattern mining.

A full reproduction of "Mining Shifting-and-Scaling Co-Regulation
Patterns on Gene Expression Profiles" (ICDE 2006): the reg-cluster model
and RWave^gamma-based mining algorithm, the baselines it is compared
against, the paper's datasets (or offline surrogates), and the evaluation
machinery behind every table and figure.

Quickstart
----------
>>> from repro import load_running_example, mine_reg_clusters
>>> result = mine_reg_clusters(load_running_example(), min_genes=3,
...                            min_conditions=5, gamma=0.15, epsilon=0.1)
>>> print(result.clusters[0].describe())
reg-cluster 3 genes x 5 conditions
  chain     : c7 <- c9 <- c5 <- c1 <- c3
  p-members : g1, g3
  n-members : g2
"""

from repro.core import (
    MiningParameters,
    MiningResult,
    PruningConfig,
    RegCluster,
    RegClusterMiner,
    RWaveIndex,
    RWaveModel,
    build_rwave,
    is_valid_reg_cluster,
    mine_reg_clusters,
    validation_errors,
)
from repro.datasets import (
    SyntheticConfig,
    load_running_example,
    make_synthetic_dataset,
    make_yeast_surrogate,
)
from repro.matrix import ExpressionMatrix, load_expression_matrix

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ExpressionMatrix",
    "load_expression_matrix",
    "MiningParameters",
    "MiningResult",
    "PruningConfig",
    "RegCluster",
    "RegClusterMiner",
    "RWaveModel",
    "RWaveIndex",
    "build_rwave",
    "mine_reg_clusters",
    "validation_errors",
    "is_valid_reg_cluster",
    "load_running_example",
    "make_synthetic_dataset",
    "SyntheticConfig",
    "make_yeast_surrogate",
]
