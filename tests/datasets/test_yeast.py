"""Unit tests for the yeast surrogate dataset."""

from __future__ import annotations

import pytest

from repro.core.miner import MiningParameters
from repro.core.validate import is_valid_reg_cluster
from repro.datasets.yeast import (
    DEFAULT_MODULES,
    REPORTED_MODULE_NAMES,
    YEAST_SHAPE,
    YeastModule,
    make_yeast_surrogate,
)


@pytest.fixture(scope="module")
def small_surrogate():
    """A reduced-shape surrogate so tests stay fast."""
    return make_yeast_surrogate(shape=(400, 17), seed=7)


class TestModulesSpec:
    def test_default_modules_include_table2_processes(self):
        processes = {m.process for m in DEFAULT_MODULES}
        assert "DNA replication" in processes
        assert "protein biosynthesis" in processes
        assert "cytoplasm organization and biogenesis" in processes

    def test_reported_names_are_defaults(self):
        names = {m.name for m in DEFAULT_MODULES}
        assert set(REPORTED_MODULE_NAMES) <= names

    def test_member_count(self):
        module = YeastModule(
            name="x", process="p", function="f", component="c",
            n_p_members=3, n_n_members=2,
        )
        assert module.n_members == 5


class TestGeneration:
    def test_default_shape_is_tavazoie(self):
        assert YEAST_SHAPE == (2884, 17)

    def test_shape_and_names(self, small_surrogate):
        assert small_surrogate.matrix.shape == (400, 17)
        assert small_surrogate.matrix.gene_names[0] == "YGENE0001"

    def test_deterministic(self):
        a = make_yeast_surrogate(shape=(200, 17), seed=3)
        b = make_yeast_surrogate(shape=(200, 17), seed=3)
        assert a.matrix == b.matrix
        assert a.embedded == b.embedded

    def test_gene_modules_consistent_with_embedded(self, small_surrogate):
        for module, cluster in zip(
            small_surrogate.modules, small_surrogate.embedded
        ):
            for gene in cluster.genes:
                assert small_surrogate.gene_modules[gene] == module.name

    def test_module_cluster_lookup(self, small_surrogate):
        cluster = small_surrogate.module_cluster("dna_replication")
        assert cluster is small_surrogate.embedded[0]
        with pytest.raises(KeyError):
            small_surrogate.module_cluster("nope")

    def test_modules_have_negative_members(self, small_surrogate):
        assert all(c.n_members for c in small_surrogate.embedded)
        assert all(
            len(c.p_members) > len(c.n_members)
            for c in small_surrogate.embedded
        )

    def test_embedded_modules_are_valid_reg_clusters(self, small_surrogate):
        """Every module validates at the paper's yeast mining setting
        (gamma=0.05, epsilon=1.0) — and even at epsilon ~ 0."""
        for cluster in small_surrogate.embedded:
            params = MiningParameters(
                min_genes=len(cluster.genes),
                min_conditions=len(cluster.chain),
                gamma=0.05,
                epsilon=1e-9,
            )
            assert is_valid_reg_cluster(
                small_surrogate.matrix, cluster, params
            )


class TestValidationErrors:
    def test_infeasible_gamma(self):
        with pytest.raises(ValueError, match="infeasible"):
            make_yeast_surrogate(shape=(100, 17), embed_gamma=0.5)

    def test_too_many_module_genes(self):
        with pytest.raises(ValueError, match="more genes"):
            make_yeast_surrogate(shape=(50, 17))

    def test_module_wider_than_matrix(self):
        wide = YeastModule(
            name="w", process="p", function="f", component="c",
            n_conditions=20,
        )
        with pytest.raises(ValueError, match="more conditions"):
            make_yeast_surrogate([wide], shape=(100, 17), embed_gamma=0.04)
