"""Pins Table 1 of the paper."""

from __future__ import annotations

from repro.datasets.running_example import (
    RUNNING_EXAMPLE_VALUES,
    load_running_example,
)


def test_shape_and_names():
    m = load_running_example()
    assert m.shape == (3, 10)
    assert m.gene_names == ("g1", "g2", "g3")
    assert m.condition_names == tuple(f"c{j}" for j in range(1, 11))


def test_exact_values():
    m = load_running_example()
    assert m.values.tolist() == [list(row) for row in RUNNING_EXAMPLE_VALUES]


def test_spot_values_from_table1():
    m = load_running_example()
    assert m.value("g1", "c2") == -14.5
    assert m.value("g2", "c4") == 43.5
    assert m.value("g3", "c2") == -3.8
    assert m.value("g3", "c6") == 7.8


def test_fresh_instance_each_call():
    assert load_running_example() is not load_running_example()
