"""Unit tests for the noise-injection utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.miner import MiningParameters, RegClusterMiner
from repro.datasets.noise import add_dropout, add_gaussian_noise, permute_cells
from repro.datasets.synthetic import make_synthetic_dataset
from repro.eval.match import match_report


@pytest.fixture(scope="module")
def clean_data():
    return make_synthetic_dataset(
        n_genes=150, n_conditions=14, n_clusters=2, seed=10,
        gene_fraction=0.08, dimensionality_jitter=0,
    )


class TestGaussianNoise:
    def test_zero_level_is_identity(self, clean_data):
        noisy = add_gaussian_noise(clean_data.matrix, 0.0)
        assert noisy == clean_data.matrix

    def test_noise_magnitude_scales_with_gene_range(self, clean_data):
        noisy = add_gaussian_noise(clean_data.matrix, 0.1, seed=1)
        delta = np.abs(noisy.values - clean_data.matrix.values)
        ranges = clean_data.matrix.gene_ranges()
        per_gene = delta.mean(axis=1) / ranges
        assert 0.02 < per_gene.mean() < 0.2

    def test_absolute_mode(self, clean_data):
        noisy = add_gaussian_noise(
            clean_data.matrix, 0.5, seed=2, relative=False
        )
        delta = noisy.values - clean_data.matrix.values
        assert 0.2 < np.abs(delta).mean() < 0.8

    def test_deterministic(self, clean_data):
        a = add_gaussian_noise(clean_data.matrix, 0.1, seed=3)
        b = add_gaussian_noise(clean_data.matrix, 0.1, seed=3)
        assert a == b

    def test_negative_level_rejected(self, clean_data):
        with pytest.raises(ValueError):
            add_gaussian_noise(clean_data.matrix, -0.1)


class TestDropout:
    def test_fraction_bounds(self, clean_data):
        with pytest.raises(ValueError):
            add_dropout(clean_data.matrix, 1.5)

    def test_fraction_zero_identity(self, clean_data):
        assert add_dropout(clean_data.matrix, 0.0) == clean_data.matrix

    def test_expected_number_of_cells_changed(self, clean_data):
        noisy = add_dropout(clean_data.matrix, 0.3, seed=4)
        changed = np.sum(noisy.values != clean_data.matrix.values)
        total = clean_data.matrix.values.size
        assert 0.2 < changed / total < 0.4


class TestPermutation:
    def test_preserves_per_gene_distribution(self, clean_data):
        shuffled = permute_cells(clean_data.matrix, seed=5)
        assert np.allclose(
            np.sort(shuffled.values, axis=1),
            np.sort(clean_data.matrix.values, axis=1),
        )

    def test_destroys_recovery(self, clean_data):
        """The null control: after permutation the embedded clusters are
        gone."""
        params = MiningParameters(
            min_genes=10, min_conditions=6, gamma=0.1, epsilon=0.01
        )
        shuffled = permute_cells(clean_data.matrix, seed=6)
        result = RegClusterMiner(shuffled, params).mine()
        report = match_report(result.clusters, clean_data.embedded,
                              threshold=0.5)
        assert report.n_recovered == 0


class TestEpsilonAbsorbsNoise:
    def test_recovery_with_matched_epsilon(self, clean_data):
        """Small noise breaks epsilon=0 recovery but a matched epsilon
        restores it — the designed role of the coherence threshold."""
        noisy = add_gaussian_noise(clean_data.matrix, 0.01, seed=7)
        strict = MiningParameters(
            min_genes=10, min_conditions=6, gamma=0.08, epsilon=1e-6
        )
        relaxed = strict.with_overrides(epsilon=0.5)
        strict_report = match_report(
            RegClusterMiner(noisy, strict).mine().clusters,
            clean_data.embedded,
            threshold=0.8,
        )
        relaxed_report = match_report(
            RegClusterMiner(noisy, relaxed).mine().clusters,
            clean_data.embedded,
            threshold=0.8,
        )
        assert relaxed_report.n_recovered > strict_report.n_recovered
        assert relaxed_report.n_recovered == clean_data.n_embedded
