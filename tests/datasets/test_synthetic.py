"""Unit and property tests for the section 5 synthetic generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.miner import MiningParameters, RegClusterMiner
from repro.core.validate import is_valid_reg_cluster
from repro.datasets.synthetic import SyntheticConfig, make_synthetic_dataset
from repro.eval.match import match_report


class TestConfigValidation:
    def test_defaults_match_paper(self):
        config = SyntheticConfig()
        assert config.n_genes == 3000
        assert config.n_conditions == 30
        assert config.n_clusters == 30
        assert config.avg_dimensionality == 6
        assert config.gene_fraction == 0.01
        assert config.embed_gamma == 0.15

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="gene_fraction"):
            SyntheticConfig(gene_fraction=0.0)

    def test_rejects_infeasible_gamma_dimensionality(self):
        with pytest.raises(ValueError, match="gamma"):
            SyntheticConfig(
                avg_dimensionality=10,
                dimensionality_jitter=0,
                embed_gamma=0.15,
            )

    def test_rejects_dimensionality_above_conditions(self):
        with pytest.raises(ValueError, match="exceeds"):
            SyntheticConfig(n_conditions=4, avg_dimensionality=6)

    def test_rejects_overfull_embedding(self):
        with pytest.raises(ValueError, match="distinct genes"):
            make_synthetic_dataset(
                n_genes=10, n_conditions=12, n_clusters=10, gene_fraction=0.5
            )


class TestGeneration:
    def test_shape_and_determinism(self):
        a = make_synthetic_dataset(n_genes=120, n_conditions=15, n_clusters=3,
                                   seed=9)
        b = make_synthetic_dataset(n_genes=120, n_conditions=15, n_clusters=3,
                                   seed=9)
        assert a.matrix == b.matrix
        assert a.embedded == b.embedded

    def test_different_seed_differs(self):
        a = make_synthetic_dataset(n_genes=60, n_conditions=12, n_clusters=2,
                                   seed=1)
        b = make_synthetic_dataset(n_genes=60, n_conditions=12, n_clusters=2,
                                   seed=2)
        assert a.matrix != b.matrix

    def test_requested_number_of_clusters(self):
        data = make_synthetic_dataset(n_genes=200, n_conditions=20,
                                      n_clusters=4, seed=0)
        assert data.n_embedded == 4

    def test_embedded_gene_sets_are_disjoint(self):
        data = make_synthetic_dataset(n_genes=300, n_conditions=20,
                                      n_clusters=6, seed=5)
        seen = set()
        for cluster in data.embedded:
            genes = set(cluster.genes)
            assert not genes & seen
            seen |= genes

    def test_embedded_clusters_mix_orientations(self):
        data = make_synthetic_dataset(n_genes=400, n_conditions=20,
                                      n_clusters=4, seed=2,
                                      gene_fraction=0.03)
        assert all(len(c.p_members) > len(c.n_members) for c in data.embedded)
        assert any(c.n_members for c in data.embedded)

    @pytest.mark.parametrize("seed", range(4))
    def test_embedded_clusters_are_valid_reg_clusters(self, seed):
        """Every embedded cluster satisfies Definition 3.2 at the
        generator's (gamma=0.15, epsilon=0)."""
        data = make_synthetic_dataset(
            n_genes=200, n_conditions=18, n_clusters=4, seed=seed
        )
        for cluster in data.embedded:
            params = MiningParameters(
                min_genes=len(cluster.genes),
                min_conditions=len(cluster.chain),
                gamma=data.config.embed_gamma,
                epsilon=1e-9,  # allow float rounding only
            )
            assert is_valid_reg_cluster(data.matrix, cluster, params)

    def test_background_range(self):
        data = make_synthetic_dataset(n_genes=50, n_conditions=10,
                                      n_clusters=0, seed=3)
        assert data.matrix.values.min() >= 0.0
        assert data.matrix.values.max() <= 10.0


class TestRecovery:
    def test_miner_recovers_embedded_clusters(self):
        """End-to-end: the miner finds every sufficiently large embedded
        cluster at the paper's Figure 7 mining setting."""
        data = make_synthetic_dataset(
            n_genes=250,
            n_conditions=20,
            n_clusters=4,
            seed=11,
            gene_fraction=0.04,  # 10 genes per cluster
            dimensionality_jitter=0,  # exactly 6 conditions each
        )
        params = MiningParameters(
            min_genes=8, min_conditions=6, gamma=0.1, epsilon=0.01
        )
        result = RegClusterMiner(data.matrix, params).mine()
        report = match_report(result.clusters, data.embedded, threshold=0.99)
        assert report.n_recovered == 4
        assert report.relevance > 0.9
