"""Unit tests for the benchmark sweep harness."""

from __future__ import annotations

import pytest

from repro.bench.runner import paper_mining_parameters, run_sweep
from repro.datasets.synthetic import SyntheticConfig


class TestPaperParameters:
    def test_figure7_settings(self):
        params = paper_mining_parameters(3000)
        assert params.min_genes == 30
        assert params.min_conditions == 6
        assert params.gamma == 0.1
        assert params.epsilon == 0.01

    def test_small_gene_counts_floor(self):
        assert paper_mining_parameters(50).min_genes == 2


class TestSweep:
    BASE = SyntheticConfig(
        n_genes=80, n_conditions=10, n_clusters=2, seed=1
    )

    def test_sweep_over_genes(self):
        result = run_sweep("n_genes", [60, 90], base_config=self.BASE)
        assert result.parameter == "n_genes"
        assert result.values() == [60, 90]
        assert all(s > 0 for s in result.seconds())
        assert all(p.nodes_expanded > 0 for p in result.points)

    def test_sweep_over_conditions(self):
        result = run_sweep("n_conditions", [8, 10], base_config=self.BASE)
        assert [p.value for p in result.points] == [8, 10]

    def test_custom_params_factory(self):
        calls = []

        def factory(config):
            calls.append(config.n_clusters)
            return paper_mining_parameters(config.n_genes)

        run_sweep(
            "n_clusters", [1, 2], base_config=self.BASE,
            params_factory=factory,
        )
        assert calls == [1, 2]

    def test_unknown_parameter(self):
        with pytest.raises(ValueError, match="parameter"):
            run_sweep("n_bogus", [1])

    def test_point_str(self):
        result = run_sweep("n_genes", [60], base_config=self.BASE)
        assert "n_genes=60" in str(result.points[0])


class TestSweepSmoke:
    """Satellite smoke coverage: tiny sweeps stay well-formed and
    JSON-serializable (the shape the regression snapshots rely on)."""

    BASE = SyntheticConfig(n_genes=60, n_conditions=8, n_clusters=2, seed=5)

    def test_points_match_values_in_order(self):
        values = [40, 60, 80]
        result = run_sweep("n_genes", values, base_config=self.BASE)
        assert len(result.points) == len(values)
        assert result.values() == values
        assert all(p.parameter == "n_genes" for p in result.points)

    def test_points_serialize_to_valid_json(self):
        import dataclasses
        import json

        result = run_sweep("n_genes", [40, 60], base_config=self.BASE)
        payload = json.dumps(
            {
                "parameter": result.parameter,
                "points": [dataclasses.asdict(p) for p in result.points],
            }
        )
        back = json.loads(payload)
        assert back["parameter"] == "n_genes"
        assert [p["value"] for p in back["points"]] == [40, 60]
        assert all(p["seconds"] > 0 for p in back["points"])
