"""Unit tests for ASCII report rendering."""

from __future__ import annotations

import pytest

from repro.bench.report import ascii_series, ascii_table, format_seconds


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(5e-5) == "50us"

    def test_milliseconds(self):
        assert format_seconds(0.0123) == "12.3ms"

    def test_seconds(self):
        assert format_seconds(2.5) == "2.50s"


class TestTable:
    def test_alignment_and_rule(self):
        table = ascii_table(["a", "long header"], [[1, 2], ["xyz", 4]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) == {"-"}
        assert all(len(line) <= len(lines[1]) for line in lines)

    def test_empty_rows(self):
        table = ascii_table(["x"], [])
        assert "x" in table


class TestSeries:
    def test_bars_proportional(self):
        text = ascii_series("runtime", [1, 2], [1.0, 2.0], width=10, unit="s")
        lines = text.splitlines()
        assert lines[0] == "runtime"
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_zero_values(self):
        text = ascii_series("flat", [1], [0.0])
        assert "#" not in text

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="parallel"):
            ascii_series("x", [1, 2], [1.0])
