"""Smoke coverage for the Figure 7 scalability benchmark path.

``benchmarks/bench_fig7_scalability.py`` is normally executed via
``pytest --benchmark-only``; these tests exercise the same driver
(:func:`repro.experiments.fig7.run_figure7`) at a tiny scale so a broken
sweep surfaces in the tier-1 suite instead of only in a benchmark run,
and verify that the benchmark file itself still collects.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.experiments.fig7 import QUICK_SWEEPS, run_figure7

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def quick_result():
    tiny = SyntheticConfig(n_genes=80, n_conditions=10, n_clusters=2, seed=1)
    return run_figure7(scale="quick", base_config=tiny)


class TestFigure7Driver:
    def test_all_three_sweeps_present(self, quick_result):
        assert set(quick_result.sweeps) == set(QUICK_SWEEPS)
        for parameter, sweep in quick_result.sweeps.items():
            assert list(sweep.values()) == list(QUICK_SWEEPS[parameter])
            assert len(sweep.points) == len(QUICK_SWEEPS[parameter])
            assert all(p.seconds > 0 for p in sweep.points)

    def test_growth_ratio_defined(self, quick_result):
        for parameter in quick_result.sweeps:
            assert quick_result.growth_ratio(parameter) > 0

    def test_render_names_every_panel(self, quick_result):
        rendered = quick_result.render()
        for parameter in quick_result.sweeps:
            assert f"runtime vs {parameter}" in rendered

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            run_figure7(scale="huge")


class TestBenchmarkFileCollects:
    def test_fig7_benchmark_collects(self):
        pytest.importorskip("pytest_benchmark")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                "benchmarks/bench_fig7_scalability.py",
                "--collect-only",
                "-q",
            ],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "bench_fig7_scalability.py" in proc.stdout
