"""Tests for the benchmark-regression gate (`repro.bench.regression`)."""

from __future__ import annotations

import json

import pytest

from repro.bench.regression import (
    BenchCase,
    FULL_CASES,
    SMOKE_CASES,
    SNAPSHOT_SCHEMA,
    compare_snapshots,
    main,
    run_case,
    run_suite,
    suite_cases,
)
from repro.bench.runner import paper_mining_parameters
from repro.core.params import MiningParameters
from repro.datasets.running_example import load_running_example

TINY = BenchCase(
    "tiny",
    lambda: (
        load_running_example(),
        MiningParameters(
            min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
        ),
    ),
    repeats=2,
)


class TestSuiteDefinition:
    def test_scales(self):
        assert suite_cases("smoke") == SMOKE_CASES
        assert suite_cases("full") == FULL_CASES
        with pytest.raises(ValueError, match="scale"):
            suite_cases("galactic")

    def test_smoke_is_a_prefix_of_full(self):
        assert FULL_CASES[: len(SMOKE_CASES)] == SMOKE_CASES

    def test_full_includes_the_fig7_default_point(self):
        names = [case.name for case in FULL_CASES]
        assert "fig7-default" in names

    def test_cases_are_pinned(self):
        # Building a case twice yields the same matrix (fixed seeds).
        for case in SMOKE_CASES:
            first, params_a = case.build()
            second, params_b = case.build()
            assert first == second
            assert params_a == params_b

    def test_fig7_params_follow_the_paper(self):
        matrix, params = dict(
            (c.name, c) for c in SMOKE_CASES
        )["fig7-smoke"].build()
        assert params == paper_mining_parameters(matrix.n_genes)


class TestRunCase:
    @pytest.mark.parametrize("use_kernel", [True, False])
    def test_measurement_fields(self, use_kernel):
        entry = run_case(TINY, use_kernel=use_kernel)
        assert entry["case"] == "tiny"
        assert entry["use_kernel"] is use_kernel
        assert entry["repeats"] == 2
        assert entry["wall_seconds"] > 0
        assert entry["wall_seconds_mean"] >= entry["wall_seconds"]
        assert entry["nodes_expanded"] > 0
        assert entry["nodes_per_second"] > 0
        assert entry["clusters"] == 1
        assert entry["peak_rss_kb"] > 0
        assert set(entry["phase_seconds"]) == {
            "candidates", "windows", "emit"
        }

    def test_paths_agree_on_output_size(self):
        kernel = run_case(TINY, use_kernel=True)
        legacy = run_case(TINY, use_kernel=False)
        assert kernel["clusters"] == legacy["clusters"]
        assert kernel["nodes_expanded"] == legacy["nodes_expanded"]


class TestRunSuite:
    def test_snapshot_shape_and_json(self):
        snapshot = run_suite(scale="smoke", cases=[TINY])
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        assert snapshot["use_kernel"] is True
        assert [c["case"] for c in snapshot["cases"]] == ["tiny"]
        # The whole payload must survive a JSON round trip untouched.
        assert json.loads(json.dumps(snapshot)) == snapshot


def snapshot_with(cases):
    return {
        "schema": SNAPSHOT_SCHEMA,
        "cases": [
            {"case": name, "wall_seconds": wall} for name, wall in cases
        ],
    }


class TestCompare:
    def test_within_tolerance_passes(self):
        lines, regressions = compare_snapshots(
            snapshot_with([("a", 1.2)]),
            snapshot_with([("a", 1.0)]),
            tolerance=0.3,
        )
        assert regressions == []
        assert any("1.20x" in line for line in lines)

    def test_regression_detected(self):
        __, regressions = compare_snapshots(
            snapshot_with([("a", 1.5)]),
            snapshot_with([("a", 1.0)]),
            tolerance=0.3,
        )
        assert len(regressions) == 1
        assert "a" in regressions[0]

    def test_new_and_removed_cases_never_fail(self):
        lines, regressions = compare_snapshots(
            snapshot_with([("new", 9.9)]),
            snapshot_with([("old", 0.1)]),
            tolerance=0.0,
        )
        assert regressions == []
        assert any("new" in line for line in lines)
        assert any("only in baseline" in line for line in lines)

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            compare_snapshots(
                snapshot_with([]), snapshot_with([]), tolerance=-0.1
            )


class TestCli:
    def test_run_writes_valid_snapshot(self, tmp_path, capsys):
        out = tmp_path / "snap.json"
        # The smoke suite's fig7 case takes ~seconds on the legacy path;
        # the CLI is exercised on the kernel path only here.
        code = main(["run", "--scale", "smoke", "--out", str(out)])
        assert code == 0
        snapshot = json.loads(out.read_text(encoding="utf-8"))
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        assert {c["case"] for c in snapshot["cases"]} == {
            c.name for c in SMOKE_CASES
        }
        assert "nodes/s" in capsys.readouterr().out

    def test_compare_gates(self, tmp_path, capsys):
        fast = tmp_path / "fast.json"
        slow = tmp_path / "slow.json"
        fast.write_text(json.dumps(snapshot_with([("a", 1.0)])))
        slow.write_text(json.dumps(snapshot_with([("a", 2.0)])))
        assert main(
            ["compare", str(fast), str(slow), "--tolerance", "0.3"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["compare", str(slow), str(fast), "--tolerance", "0.3"]
        ) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "regression:" in captured.err
