"""Unit tests for matrix profiling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrix.expression import ExpressionMatrix
from repro.matrix.summary import _top_variable_genes, summarize


class TestSummarize:
    def test_basic_statistics(self):
        m = ExpressionMatrix([[0.0, 10.0], [5.0, 5.0]])
        s = summarize(m)
        assert s.n_genes == 2
        assert s.n_conditions == 2
        assert s.value_min == 0.0
        assert s.value_max == 10.0
        assert s.value_mean == 5.0
        assert s.n_constant_genes == 1

    def test_gene_range_quartiles(self):
        values = np.diag([1.0, 2.0, 3.0, 4.0])  # ranges 1..4
        s = summarize(ExpressionMatrix(values))
        assert s.gene_range_quartiles[1] == pytest.approx(2.5)

    def test_condition_mean_quartiles(self):
        m = ExpressionMatrix([[0.0, 2.0, 4.0], [0.0, 2.0, 4.0]])
        s = summarize(m)
        assert s.condition_mean_quartiles == (1.0, 2.0, 3.0)

    def test_suggested_threshold(self):
        m = ExpressionMatrix([[0.0, 10.0]])
        s = summarize(m)
        assert s.suggested_gamma_threshold(0.15) == pytest.approx(1.5)

    def test_render(self, running_example):
        text = summarize(running_example).render()
        assert "3 x 10" in text
        assert "constant genes" in text

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            summarize(ExpressionMatrix(np.zeros((0, 3))))


class TestTopVariableGenes:
    def test_ordering(self, running_example):
        top = _top_variable_genes(running_example, 2)
        assert [name for name, __ in top] == ["g1", "g2"]
        assert top[0][1] == pytest.approx(30.0)
