"""Unit tests for the global transforms of Eq. 1 / Eq. 2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.pcluster import max_pscore
from repro.matrix.expression import ExpressionMatrix
from repro.matrix.transform import (
    exp_transform,
    log_transform,
    rank_transform,
    standardize_genes,
)


class TestLogTransform:
    def test_scaling_becomes_shifting(self):
        """Eq. 1: log turns d_i = s1 * d_j into a pure shifting pattern."""
        base = np.array([1.0, 2.0, 4.0, 8.0])
        m = ExpressionMatrix([base, 3.0 * base])
        logged = log_transform(m, shift=0.0)
        assert max_pscore(logged.values) == pytest.approx(0.0, abs=1e-12)

    def test_auto_shift_makes_positive(self):
        m = ExpressionMatrix([[-5.0, 0.0, 5.0]])
        logged = log_transform(m)
        assert np.all(np.isfinite(logged.values))

    def test_explicit_bad_shift_raises(self):
        m = ExpressionMatrix([[-5.0, 0.0]])
        with pytest.raises(ValueError, match="log transform undefined"):
            log_transform(m, shift=1.0)

    def test_shifting_and_scaling_not_linearized(self):
        """The paper's core point: no global log fixes mixed patterns."""
        base = np.array([1.0, 2.0, 4.0, 8.0])
        m = ExpressionMatrix([base, 3.0 * base + 5.0])
        logged = log_transform(m, shift=0.0)
        assert max_pscore(logged.values) > 0.05


class TestExpTransform:
    def test_shifting_becomes_scaling(self):
        """Eq. 2: exp turns d_i = d_j + s2 into a pure scaling pattern."""
        base = np.array([0.0, 1.0, 2.0])
        m = ExpressionMatrix([base, base + 3.0])
        powered = exp_transform(m)
        ratios = powered.values[1] / powered.values[0]
        assert np.allclose(ratios, ratios[0])

    def test_overflow_guard(self):
        m = ExpressionMatrix([[800.0, 1.0]])
        with pytest.raises(ValueError, match="overflow"):
            exp_transform(m)

    def test_base_parameter(self):
        m = ExpressionMatrix([[1.0, 2.0]])
        powered = exp_transform(m, base=2.0)
        assert powered.values.tolist() == [[2.0, 4.0]]


class TestStandardize:
    def test_zero_mean_unit_std(self):
        m = ExpressionMatrix([[1.0, 2.0, 3.0, 4.0]])
        z = standardize_genes(m)
        assert z.values.mean() == pytest.approx(0.0, abs=1e-12)
        assert z.values.std() == pytest.approx(1.0, abs=1e-12)

    def test_constant_gene_maps_to_zeros(self):
        m = ExpressionMatrix([[5.0, 5.0, 5.0]])
        z = standardize_genes(m)
        assert z.values.tolist() == [[0.0, 0.0, 0.0]]


class TestRankTransform:
    def test_simple_ranks(self):
        m = ExpressionMatrix([[30.0, 10.0, 20.0]])
        ranks = rank_transform(m)
        assert ranks.values.tolist() == [[3.0, 1.0, 2.0]]

    def test_ties_get_average_rank(self):
        m = ExpressionMatrix([[1.0, 1.0, 2.0]])
        ranks = rank_transform(m)
        assert ranks.values.tolist() == [[1.5, 1.5, 3.0]]

    def test_matches_scipy(self):
        from scipy.stats import rankdata

        rng = np.random.default_rng(5)
        values = rng.integers(0, 5, size=(4, 8)).astype(float)
        ranks = rank_transform(ExpressionMatrix(values))
        expected = np.vstack([rankdata(row) for row in values])
        assert np.allclose(ranks.values, expected)
