"""Unit tests for the ExpressionMatrix container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrix.expression import ExpressionMatrix


class TestConstruction:
    def test_basic_shape_and_defaults(self):
        m = ExpressionMatrix([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        assert m.shape == (3, 2)
        assert m.n_genes == 3
        assert m.n_conditions == 2
        assert m.gene_names == ("g1", "g2", "g3")
        assert m.condition_names == ("c1", "c2")

    def test_custom_names(self):
        m = ExpressionMatrix(
            [[1.0, 2.0]], gene_names=["YAL001C"], condition_names=["heat", "cold"]
        )
        assert m.gene_names == ("YAL001C",)
        assert m.condition_names == ("heat", "cold")

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            ExpressionMatrix([1.0, 2.0, 3.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            ExpressionMatrix([[1.0, float("nan")]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            ExpressionMatrix([[1.0, float("inf")]])

    def test_rejects_wrong_name_count(self):
        with pytest.raises(ValueError, match="gene names"):
            ExpressionMatrix([[1.0, 2.0]], gene_names=["a", "b"])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="unique"):
            ExpressionMatrix(
                [[1.0, 2.0], [3.0, 4.0]], gene_names=["a", "a"]
            )

    def test_values_are_read_only(self):
        m = ExpressionMatrix([[1.0, 2.0]])
        with pytest.raises(ValueError):
            m.values[0, 0] = 9.0

    def test_integer_input_coerced_to_float(self):
        m = ExpressionMatrix([[1, 2], [3, 4]])
        assert m.values.dtype == np.float64


class TestIndexing:
    def setup_method(self):
        self.m = ExpressionMatrix(
            [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]],
            gene_names=["a", "b"],
            condition_names=["x", "y", "z"],
        )

    def test_gene_index_by_name_and_int(self):
        assert self.m.gene_index("b") == 1
        assert self.m.gene_index(0) == 0
        assert self.m.gene_index(-1) == 1

    def test_condition_index_by_name_and_int(self):
        assert self.m.condition_index("z") == 2
        assert self.m.condition_index(-1) == 2

    def test_unknown_gene_raises(self):
        with pytest.raises(KeyError, match="unknown gene"):
            self.m.gene_index("nope")

    def test_out_of_range_raises(self):
        with pytest.raises(IndexError):
            self.m.gene_index(5)
        with pytest.raises(IndexError):
            self.m.condition_index(-4)

    def test_bulk_resolution(self):
        assert self.m.gene_indices(["b", 0]).tolist() == [1, 0]
        assert self.m.condition_indices(["z", "x"]).tolist() == [2, 0]

    def test_value_and_row_and_column(self):
        assert self.m.value("b", "y") == 5.0
        assert self.m.row("a").tolist() == [1.0, 2.0, 3.0]
        assert self.m.column("y").tolist() == [2.0, 5.0]


class TestSubmatrix:
    def test_projection_preserves_order(self):
        m = ExpressionMatrix([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        sub = m.submatrix(genes=[1, 0], conditions=["c3", "c1"])
        assert sub.values.tolist() == [[6.0, 4.0], [3.0, 1.0]]
        assert sub.gene_names == ("g2", "g1")
        assert sub.condition_names == ("c3", "c1")

    def test_default_axes(self):
        m = ExpressionMatrix([[1.0, 2.0], [3.0, 4.0]])
        assert m.submatrix() == m
        assert m.submatrix(genes=[0]).shape == (1, 2)
        assert m.submatrix(conditions=[1]).shape == (2, 1)


class TestStatistics:
    def test_gene_ranges(self):
        m = ExpressionMatrix([[1.0, 5.0, 3.0], [2.0, 2.0, 2.0]])
        assert m.gene_ranges().tolist() == [4.0, 0.0]

    def test_describe(self):
        m = ExpressionMatrix([[0.0, 10.0]])
        stats = m.describe()
        assert stats["min"] == 0.0
        assert stats["max"] == 10.0
        assert stats["mean"] == 5.0

    def test_equality(self):
        a = ExpressionMatrix([[1.0, 2.0]])
        b = ExpressionMatrix([[1.0, 2.0]])
        c = ExpressionMatrix([[1.0, 3.0]])
        assert a == b
        assert a != c
        assert a != "not a matrix"

    def test_repr(self):
        assert "n_genes=1" in repr(ExpressionMatrix([[1.0, 2.0]]))
