"""Unit tests for matrix I/O and missing-value imputation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrix.expression import ExpressionMatrix
from repro.matrix.io import (
    format_expression_text,
    impute_missing,
    load_expression_matrix,
    parse_expression_text,
    save_expression_matrix,
)

SAMPLE = "gene\tc1\tc2\tc3\ng1\t1.5\t2\t-3\ng2\t0\t4.25\t9\n"


class TestParsing:
    def test_parse_basic(self):
        m = parse_expression_text(SAMPLE)
        assert m.shape == (2, 3)
        assert m.gene_names == ("g1", "g2")
        assert m.value("g1", "c3") == -3.0

    def test_parse_skips_blank_lines(self):
        m = parse_expression_text("gene\tc1\n\ng1\t1\n\n")
        assert m.shape == (1, 1)

    def test_parse_missing_tokens_imputed_with_gene_mean(self):
        text = "gene\tc1\tc2\tc3\ng1\t1\tNA\t3\n"
        m = parse_expression_text(text)
        assert m.value("g1", "c2") == 2.0  # mean of 1 and 3

    def test_parse_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            parse_expression_text("")

    def test_parse_no_conditions_raises(self):
        with pytest.raises(ValueError, match="no condition columns"):
            parse_expression_text("gene\ng1\n")

    def test_parse_ragged_row_raises(self):
        with pytest.raises(ValueError, match="line 2"):
            parse_expression_text("gene\tc1\tc2\ng1\t1\n")

    def test_parse_no_rows_raises(self):
        with pytest.raises(ValueError, match="no gene rows"):
            parse_expression_text("gene\tc1\tc2\n")

    def test_parse_bad_number_raises(self):
        with pytest.raises(ValueError):
            parse_expression_text("gene\tc1\ng1\tabc\n")


class TestRoundTrip:
    def test_format_parse_round_trip(self):
        m = ExpressionMatrix(
            [[1.25, -2.0], [0.0, 1e6]],
            gene_names=["a", "b"],
            condition_names=["x", "y"],
        )
        again = parse_expression_text(format_expression_text(m))
        assert again == m

    def test_file_round_trip(self, tmp_path):
        m = ExpressionMatrix([[1.0, 2.0], [3.0, 4.0]])
        path = tmp_path / "matrix.tsv"
        save_expression_matrix(m, path)
        assert load_expression_matrix(path) == m


class TestImputation:
    def test_no_missing_is_identity(self):
        values = np.array([[1.0, 2.0]])
        out = impute_missing(values)
        assert out.tolist() == [[1.0, 2.0]]

    def test_gene_mean(self):
        values = np.array([[1.0, np.nan, 3.0], [np.nan, np.nan, np.nan]])
        out = impute_missing(values, strategy="gene_mean")
        assert out[0, 1] == 2.0
        # fully-missing gene falls back to the global observed mean
        assert np.allclose(out[1], 2.0)

    def test_drop(self):
        values = np.array([[1.0, np.nan], [3.0, 4.0]])
        out = impute_missing(values, strategy="drop")
        assert out.tolist() == [[3.0, 4.0]]

    def test_constant(self):
        values = np.array([[np.nan, 1.0]])
        out = impute_missing(values, strategy="constant", fill_value=-7.0)
        assert out.tolist() == [[-7.0, 1.0]]

    def test_constant_requires_fill_value(self):
        with pytest.raises(ValueError, match="fill_value"):
            impute_missing(np.array([[np.nan]]), strategy="constant")

    def test_error_strategy(self):
        with pytest.raises(ValueError, match="missing"):
            impute_missing(np.array([[np.nan]]), strategy="error")

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown imputation"):
            impute_missing(np.array([[1.0]]), strategy="bogus")

    def test_input_not_mutated(self):
        values = np.array([[np.nan, 1.0]])
        impute_missing(values, strategy="constant", fill_value=0.0)
        assert np.isnan(values[0, 0])
