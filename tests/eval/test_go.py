"""Unit tests for the GO ontology / annotation / enrichment substrate."""

from __future__ import annotations

import pytest

from repro.datasets.yeast import make_yeast_surrogate
from repro.eval.go.annotation import annotate_surrogate
from repro.eval.go.enrichment import enrich, go_table, top_terms_by_namespace
from repro.eval.go.ontology import (
    NAMESPACES,
    GeneOntology,
    GOTerm,
    build_default_ontology,
)


@pytest.fixture(scope="module")
def surrogate():
    return make_yeast_surrogate(shape=(400, 17), seed=7)


@pytest.fixture(scope="module")
def corpus(surrogate):
    return annotate_surrogate(surrogate, seed=1)


class TestOntology:
    def test_default_ontology_has_table2_terms(self):
        onto = build_default_ontology()
        for name in [
            "DNA replication",
            "DNA-directed DNA polymerase activity",
            "replication fork",
            "protein biosynthesis",
            "structural constituent of ribosome",
            "cytosolic ribosome",
            "cytoplasm organization and biogenesis",
            "helicase activity",
            "ribonucleoprotein complex",
        ]:
            assert onto.find_by_name(name)

    def test_ancestor_closure(self):
        onto = build_default_ontology()
        ribo = onto.find_by_name("cytosolic ribosome")
        ancestors = {onto.term(t).name for t in onto.ancestors(ribo.term_id)}
        assert "ribosome" in ancestors
        assert "ribonucleoprotein complex" in ancestors
        assert "cytoplasm" in ancestors
        assert "cellular_component" in ancestors

    def test_with_ancestors_closes_upward(self):
        onto = build_default_ontology()
        term = onto.find_by_name("DNA replication")
        closed = onto.with_ancestors([term.term_id])
        assert term.term_id in closed
        assert len(closed) >= 3

    def test_cycle_detection(self):
        with pytest.raises(ValueError, match="cycle"):
            GeneOntology(
                [
                    GOTerm("GO:1", "a", "biological_process", ("GO:2",)),
                    GOTerm("GO:2", "b", "biological_process", ("GO:1",)),
                ]
            )

    def test_unknown_parent(self):
        with pytest.raises(ValueError, match="unknown parent"):
            GeneOntology(
                [GOTerm("GO:1", "a", "biological_process", ("GO:9",))]
            )

    def test_cross_namespace_parent_rejected(self):
        with pytest.raises(ValueError, match="crosses"):
            GeneOntology(
                [
                    GOTerm("GO:1", "a", "molecular_function"),
                    GOTerm("GO:2", "b", "biological_process", ("GO:1",)),
                ]
            )

    def test_duplicate_term_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            GeneOntology(
                [
                    GOTerm("GO:1", "a", "biological_process"),
                    GOTerm("GO:1", "b", "biological_process"),
                ]
            )

    def test_unknown_lookups_raise(self):
        onto = build_default_ontology()
        with pytest.raises(KeyError):
            onto.term("GO:9999999")
        with pytest.raises(KeyError):
            onto.find_by_name("flux capacitance")
        with pytest.raises(KeyError):
            onto.ancestors("GO:9999999")


class TestAnnotation:
    def test_every_gene_annotated(self, surrogate, corpus):
        assert corpus.population == frozenset(range(400))
        assert all(
            corpus.annotations[g] for g in range(surrogate.matrix.n_genes)
        )

    def test_annotations_are_upward_closed(self, corpus):
        onto = corpus.ontology
        for terms in list(corpus.annotations.values())[:50]:
            assert onto.with_ancestors(terms) == terms

    def test_module_genes_carry_module_terms(self, surrogate):
        corpus = annotate_surrogate(surrogate, false_negative_rate=0.0,
                                    seed=2)
        module = surrogate.modules[0]
        term = corpus.ontology.find_by_name(module.process).term_id
        members = surrogate.module_cluster(module.name).genes
        annotated = corpus.genes_with_term(term)
        assert set(members) <= annotated

    def test_term_counts_match_genes_with_term(self, corpus):
        counts = corpus.term_counts()
        probe = next(iter(counts))
        assert counts[probe] == len(corpus.genes_with_term(probe))

    def test_false_negative_rate_validation(self, surrogate):
        with pytest.raises(ValueError):
            annotate_surrogate(surrogate, false_negative_rate=1.0)


class TestEnrichment:
    def test_module_cluster_highly_enriched(self, surrogate, corpus):
        module = surrogate.modules[0]
        cluster = surrogate.module_cluster(module.name)
        results = enrich(cluster, corpus)
        assert results
        top = results[0]
        assert top.p_value < 1e-8
        names = {r.name for r in results[:6]}
        assert module.process in names

    def test_random_gene_set_not_enriched(self, corpus):
        results = enrich(range(0, 60, 3), corpus)
        assert all(r.p_value > 1e-8 for r in results)

    def test_top_terms_by_namespace(self, surrogate, corpus):
        module = surrogate.modules[1]
        best = top_terms_by_namespace(
            surrogate.module_cluster(module.name), corpus
        )
        assert set(best) == set(NAMESPACES)
        assert best["biological_process"].name == module.process
        assert best["molecular_function"].name == module.function
        assert best["cellular_component"].name == module.component

    def test_empty_cluster(self, corpus):
        assert enrich([], corpus) == []

    def test_roots_never_reported(self, surrogate, corpus):
        results = enrich(surrogate.module_cluster("cell_cycle"), corpus)
        assert all(
            r.name not in ("biological_process", "molecular_function",
                           "cellular_component")
            for r in results
        )

    def test_go_table_renders(self, surrogate, corpus):
        clusters = [surrogate.module_cluster(n) for n in
                    ("dna_replication", "protein_biosynthesis")]
        table = go_table(clusters, corpus, labels=["c1", "c2"])
        assert "DNA replication" in table
        assert "p=" in table
        assert "Cellular Component" in table

    def test_go_table_label_mismatch(self, corpus):
        with pytest.raises(ValueError, match="parallel"):
            go_table([], corpus, labels=["x"])

    def test_p_values_sorted(self, surrogate, corpus):
        results = enrich(surrogate.module_cluster("stress_response"), corpus)
        p_values = [r.p_value for r in results]
        assert p_values == sorted(p_values)
