"""Unit tests for GO on-disk formats (OBO-lite + annotation tables)."""

from __future__ import annotations

import pytest

from repro.datasets.yeast import make_yeast_surrogate
from repro.eval.go.annotation import annotate_surrogate
from repro.eval.go.enrichment import enrich
from repro.eval.go.io import (
    load_annotations,
    load_ontology,
    save_annotations,
    save_ontology,
)
from repro.eval.go.ontology import build_default_ontology


@pytest.fixture(scope="module")
def corpus():
    surrogate = make_yeast_surrogate(shape=(200, 17), seed=3)
    return annotate_surrogate(surrogate, seed=4)


class TestOntologyRoundTrip:
    def test_round_trip_preserves_terms(self, tmp_path):
        ontology = build_default_ontology()
        path = tmp_path / "ontology.obo"
        save_ontology(ontology, path)
        again = load_ontology(path)
        assert len(again) == len(ontology)
        for term in ontology.terms():
            loaded = again.term(term.term_id)
            assert loaded.name == term.name
            assert loaded.namespace == term.namespace
            assert set(loaded.parents) == set(term.parents)
            assert again.ancestors(term.term_id) == ontology.ancestors(
                term.term_id
            )

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bad.obo"
        path.write_text("[Term]\nid: GO:1\nname: x\n\n")
        with pytest.raises(ValueError, match="namespace"):
            load_ontology(path)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.obo"
        path.write_text("[Term]\nnonsense line without separator\n")
        with pytest.raises(ValueError, match="malformed"):
            load_ontology(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.obo"
        path.write_text("")
        with pytest.raises(ValueError, match="no \\[Term\\]"):
            load_ontology(path)


class TestAnnotationRoundTrip:
    def test_full_round_trip(self, corpus, tmp_path):
        path = tmp_path / "annotations.tsv"
        save_annotations(corpus, path)
        again = load_annotations(path, corpus.ontology)
        assert again.population == corpus.population
        assert dict(again.annotations) == dict(corpus.annotations)

    def test_direct_only_reconstructs_closure(self, corpus, tmp_path):
        path = tmp_path / "direct.tsv"
        save_annotations(corpus, path, direct_only=True)
        again = load_annotations(path, corpus.ontology)
        assert dict(again.annotations) == dict(corpus.annotations)
        # and the direct file is smaller than the closed one
        full = tmp_path / "full.tsv"
        save_annotations(corpus, full)
        assert path.stat().st_size < full.stat().st_size

    def test_enrichment_identical_after_round_trip(self, corpus, tmp_path):
        path = tmp_path / "annotations.tsv"
        save_annotations(corpus, path, direct_only=True)
        again = load_annotations(path, corpus.ontology)
        genes = sorted(corpus.population)[:30]
        before = [(e.term_id, e.p_value) for e in enrich(genes, corpus)]
        after = [(e.term_id, e.p_value) for e in enrich(genes, again)]
        assert before == after

    def test_unknown_term_rejected(self, corpus, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("gene\tterm\n0\tGO:99999\n")
        with pytest.raises(ValueError, match="unknown GO term"):
            load_annotations(path, corpus.ontology)

    def test_missing_header_rejected(self, corpus, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("0\tGO:1\n")
        with pytest.raises(ValueError, match="header"):
            load_annotations(path, corpus.ontology)

    def test_ragged_row_rejected(self, corpus, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("gene\tterm\n0\n")
        with pytest.raises(ValueError, match="2 fields"):
            load_annotations(path, corpus.ontology)
