"""Unit tests for permutation-based cluster significance."""

from __future__ import annotations

import pytest

from repro.core.miner import MiningParameters, RegClusterMiner
from repro.datasets.synthetic import make_synthetic_dataset
from repro.eval.significance import empirical_p_value, null_cluster_sizes


@pytest.fixture(scope="module")
def mined():
    data = make_synthetic_dataset(
        n_genes=120, n_conditions=12, n_clusters=1, seed=19,
        gene_fraction=0.1, dimensionality_jitter=0,
    )
    params = MiningParameters(
        min_genes=8, min_conditions=6, gamma=0.1, epsilon=0.05
    )
    result = RegClusterMiner(data.matrix, params).mine()
    assert result.clusters, "fixture expects the embedded cluster found"
    return data, params, result


class TestNullDistribution:
    def test_sizes_are_per_replicate(self, mined):
        data, params, __ = mined
        sizes = null_cluster_sizes(
            data.matrix, params, n_permutations=5, seed=1
        )
        assert len(sizes) == 5
        assert all(size >= 0 for size in sizes)

    def test_deterministic_given_seed(self, mined):
        data, params, __ = mined
        a = null_cluster_sizes(data.matrix, params, n_permutations=3, seed=2)
        b = null_cluster_sizes(data.matrix, params, n_permutations=3, seed=2)
        assert a == b

    def test_validation(self, mined):
        data, params, __ = mined
        with pytest.raises(ValueError):
            null_cluster_sizes(data.matrix, params, n_permutations=0)


class TestEmpiricalPValue:
    def test_real_cluster_is_significant(self, mined):
        data, params, result = mined
        biggest = max(
            result.clusters, key=lambda c: c.n_genes * c.n_conditions
        )
        report = empirical_p_value(
            biggest, data.matrix, params, n_permutations=9, seed=3
        )
        # no permuted replicate produces anything as large
        assert report.p_value == pytest.approx(1 / 10)
        assert report.observed_area == biggest.n_genes * biggest.n_conditions

    def test_never_reports_zero(self, mined):
        data, params, result = mined
        report = empirical_p_value(
            result.clusters[0], data.matrix, params,
            n_permutations=4, seed=4,
        )
        assert report.p_value > 0.0

    def test_str(self, mined):
        data, params, result = mined
        report = empirical_p_value(
            result.clusters[0], data.matrix, params,
            n_permutations=3, seed=5,
        )
        assert "empirical p" in str(report)
