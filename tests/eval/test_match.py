"""Unit tests for cluster matching / recovery metrics."""

from __future__ import annotations

import pytest

from repro.core.cluster import RegCluster
from repro.eval.match import (
    best_match,
    jaccard_cells,
    match_report,
    recovery_score,
    relevance_score,
)


def cluster(genes, conditions):
    return RegCluster(chain=tuple(conditions), p_members=tuple(genes))


class TestJaccard:
    def test_identical(self):
        a = cluster([0, 1], [0, 1])
        assert jaccard_cells(a, a) == 1.0

    def test_disjoint(self):
        assert jaccard_cells(cluster([0], [0]), cluster([1], [1])) == 0.0

    def test_partial(self):
        a = cluster([0, 1], [0, 1])  # 4 cells
        b = cluster([1, 2], [0, 1])  # 4 cells, 2 shared
        assert jaccard_cells(a, b) == pytest.approx(2 / 6)

    def test_symmetry(self):
        a = cluster([0, 1, 2], [0, 1])
        b = cluster([1], [1, 2])
        assert jaccard_cells(a, b) == jaccard_cells(b, a)


class TestBestMatch:
    def test_picks_highest(self):
        target = cluster([0, 1], [0, 1])
        pool = [cluster([5], [5]), cluster([0, 1], [0, 2]), target]
        match, score = best_match(target, pool)
        assert match == target
        assert score == 1.0

    def test_empty_pool(self):
        match, score = best_match(cluster([0], [0]), [])
        assert match is None
        assert score == 0.0


class TestAggregates:
    def test_perfect_recovery(self):
        truth = [cluster([0, 1], [0, 1]), cluster([2, 3], [2, 3])]
        assert recovery_score(truth, truth) == 1.0
        assert relevance_score(truth, truth) == 1.0

    def test_missing_cluster_halves_recovery(self):
        truth = [cluster([0, 1], [0, 1]), cluster([2, 3], [2, 3])]
        found = [truth[0]]
        assert recovery_score(found, truth) == pytest.approx(0.5)
        assert relevance_score(found, truth) == 1.0

    def test_spurious_cluster_lowers_relevance(self):
        truth = [cluster([0, 1], [0, 1])]
        found = [truth[0], cluster([8, 9], [8, 9])]
        assert recovery_score(found, truth) == 1.0
        assert relevance_score(found, truth) == pytest.approx(0.5)

    def test_empty_edge_cases(self):
        assert recovery_score([], []) == 1.0
        assert relevance_score([], []) == 1.0
        assert relevance_score([], [cluster([0], [0])]) == 0.0


class TestReport:
    def test_report_counts_threshold(self):
        truth = [cluster([0, 1], [0, 1]), cluster([2, 3], [2, 3])]
        found = [truth[0], cluster([2], [2, 3])]
        report = match_report(found, truth, threshold=0.9)
        assert report.n_recovered == 1
        assert report.n_found == 2
        assert report.n_embedded == 2
        assert "1/2" in str(report)
