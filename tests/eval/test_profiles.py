"""Unit tests for ASCII profile rendering."""

from __future__ import annotations

import pytest

from repro.core.cluster import RegCluster
from repro.eval.profiles import render_cluster_profiles


@pytest.fixture
def paper_cluster(running_example):
    chain = tuple(
        running_example.condition_indices(["c7", "c9", "c5", "c1", "c3"])
    )
    return RegCluster(chain=chain, p_members=(0, 2), n_members=(1,))


class TestRendering:
    def test_contains_markers_and_labels(self, running_example, paper_cluster):
        art = render_cluster_profiles(paper_cluster, running_example)
        assert "*" in art  # p-members
        assert "o" in art  # n-members
        assert "c7" in art and "c3" in art
        assert "p-members (*/-): 2" in art
        assert "n-members (o/.): 1" in art

    def test_normalized_profiles_overlap(self, running_example, paper_cluster):
        """After per-gene normalization all members trace the same shape:
        p markers climb from bottom-left to top-right."""
        art = render_cluster_profiles(
            paper_cluster, running_example, height=10, column_width=6
        )
        rows = art.splitlines()[:-2]  # drop labels + legend
        first_col = [r[0] if r else " " for r in rows]
        # p-members start at the chart bottom (low value on c7)
        assert first_col[-1] == "*"
        # the n-member starts at the top
        assert first_col[0] == "o"

    def test_raw_mode(self, running_example, paper_cluster):
        art = render_cluster_profiles(
            paper_cluster, running_example, normalize=False
        )
        assert "*" in art

    def test_parameter_validation(self, running_example, paper_cluster):
        with pytest.raises(ValueError):
            render_cluster_profiles(
                paper_cluster, running_example, height=1
            )
        with pytest.raises(ValueError):
            render_cluster_profiles(
                paper_cluster, running_example, column_width=2
            )

    def test_single_condition_cluster(self, running_example):
        cluster = RegCluster(chain=(0,), p_members=(0,))
        art = render_cluster_profiles(cluster, running_example)
        assert "*" in art
