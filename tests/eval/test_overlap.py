"""Unit tests for overlap statistics (section 5.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cluster import RegCluster
from repro.eval.overlap import (
    overlap_summary,
    pairwise_overlap_matrix,
    select_non_overlapping,
)


def cluster(genes, conditions):
    return RegCluster(chain=tuple(conditions), p_members=tuple(genes))


class TestMatrix:
    def test_diagonal_one(self):
        clusters = [cluster([0], [0]), cluster([1], [1])]
        m = pairwise_overlap_matrix(clusters)
        assert np.allclose(np.diag(m), 1.0)

    def test_asymmetric_denominators(self):
        big = cluster([0, 1], [0, 1])  # 4 cells
        small = cluster([0], [0])  # 1 cell, fully inside big
        m = pairwise_overlap_matrix([big, small])
        assert m[1, 0] == 1.0  # all of small's cells are in big
        assert m[0, 1] == pytest.approx(0.25)


class TestSummary:
    def test_empty_and_single(self):
        assert overlap_summary([]).n_clusters == 0
        single = overlap_summary([cluster([0], [0])])
        assert single.max_overlap == 0.0

    def test_range(self):
        a = cluster([0, 1], [0, 1])
        b = cluster([1, 2], [0, 1])  # half of a
        c = cluster([9], [9])  # disjoint
        summary = overlap_summary([a, b, c])
        assert summary.min_overlap == 0.0
        assert summary.max_overlap == pytest.approx(0.5)
        assert "3 clusters" in str(summary)


class TestSelection:
    def test_picks_disjoint_largest_first(self):
        big = cluster([0, 1, 2], [0, 1, 2])
        medium = cluster([5, 6], [5, 6])
        overlapping = cluster([0, 1], [0, 1])  # inside big
        picked = select_non_overlapping([overlapping, medium, big], limit=3)
        assert big in picked
        assert medium in picked
        assert overlapping not in picked

    def test_limit(self):
        clusters = [cluster([i], [i]) for i in range(5)]
        assert len(select_non_overlapping(clusters, limit=2)) == 2
        assert select_non_overlapping(clusters, limit=0) == []

    def test_max_overlap_tolerance(self):
        a = cluster([0, 1, 2, 3], [0, 1, 2, 3])  # 16 cells
        b = cluster([3, 4, 5, 6], [3, 4, 5, 6])  # shares 1 cell (1/16)
        strict = select_non_overlapping([a, b], limit=2, max_overlap=0.0)
        assert len(strict) == 1
        loose = select_non_overlapping([a, b], limit=2, max_overlap=0.1)
        assert len(loose) == 2
