"""Unit tests for coverage analysis."""

from __future__ import annotations

import pytest

from repro.core.cluster import RegCluster
from repro.eval.coverage import (
    coverage_report,
    gene_membership_counts,
)
from repro.matrix.expression import ExpressionMatrix


@pytest.fixture
def matrix():
    return ExpressionMatrix([[float(i + j) for j in range(4)]
                             for i in range(5)])


def cluster(genes, conditions):
    return RegCluster(chain=tuple(conditions), p_members=tuple(genes))


class TestMembership:
    def test_counts(self):
        clusters = [cluster([0, 1], [0]), cluster([1, 2], [1])]
        assert gene_membership_counts(clusters) == {0: 1, 1: 2, 2: 1}

    def test_empty(self):
        assert gene_membership_counts([]) == {}


class TestCoverageReport:
    def test_disjoint_clusters(self, matrix):
        clusters = [cluster([0, 1], [0, 1]), cluster([2, 3], [2, 3])]
        report = coverage_report(clusters, matrix)
        assert report.covered_cells == 8
        assert report.total_cells == 20
        assert report.cell_fraction == pytest.approx(0.4)
        assert report.covered_genes == 4
        assert report.covered_conditions == 4
        assert report.multi_cluster_genes == 0

    def test_overlapping_clusters_counted_once(self, matrix):
        clusters = [cluster([0, 1], [0, 1]), cluster([1, 2], [0, 1])]
        report = coverage_report(clusters, matrix)
        assert report.covered_cells == 6  # genes {0,1,2} x conditions {0,1}
        assert report.multi_cluster_genes == 1  # gene 1

    def test_membership_histogram(self, matrix):
        clusters = [
            cluster([0], [0]),
            cluster([0], [1]),
            cluster([0], [2]),
            cluster([1], [0]),
        ]
        report = coverage_report(clusters, matrix)
        assert dict(report.membership_histogram) == {1: 1, 3: 1}

    def test_empty_result(self, matrix):
        report = coverage_report([], matrix)
        assert report.covered_cells == 0
        assert report.cell_fraction == 0.0
        assert "0 clusters" in str(report)

    def test_str(self, matrix):
        report = coverage_report([cluster([0], [0])], matrix)
        assert "1 clusters cover 1/20 cells" in str(report)
