"""Sweep grids, batch ids, and the sweep store."""

from __future__ import annotations

import pytest

from repro.incremental import (
    MAX_SWEEP_POINTS,
    SweepBatch,
    SweepPoint,
    SweepStore,
    compute_sweep_id,
    expand_grid,
)

PARAMS = {"min_genes": 2, "min_conditions": 2, "epsilon": 0.1}
DIGEST = "ab" * 32


class TestGrid:
    def test_gamma_major_order(self):
        # Gamma-major ordering is what lets the executor build each
        # (matrix, gamma) kernel exactly once: all points of one gamma
        # run back to back.
        grid = expand_grid([0.3, 0.2], [0.1, 0.05])
        assert grid == [
            (0.2, 0.05),
            (0.2, 0.1),
            (0.3, 0.05),
            (0.3, 0.1),
        ]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            expand_grid([], [0.1])

    def test_duplicate_axis_value_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            expand_grid([0.2, 0.2], [0.1])

    def test_grid_size_cap(self):
        gammas = [i / 100.0 for i in range(MAX_SWEEP_POINTS + 1)]
        with pytest.raises(ValueError, match="points"):
            expand_grid(gammas, [0.1])


class TestSweepId:
    def test_deterministic_and_order_insensitive(self):
        a = compute_sweep_id(DIGEST, PARAMS, [0.2, 0.3], [0.1])
        b = compute_sweep_id(DIGEST, PARAMS, [0.3, 0.2], [0.1])
        assert a == b
        assert a.startswith("sweep-")

    def test_sensitive_to_grid_and_parameters(self):
        base = compute_sweep_id(DIGEST, PARAMS, [0.2], [0.1])
        assert base != compute_sweep_id(DIGEST, PARAMS, [0.25], [0.1])
        assert base != compute_sweep_id(
            DIGEST, {**PARAMS, "min_genes": 3}, [0.2], [0.1]
        )
        assert base != compute_sweep_id("cd" * 32, PARAMS, [0.2], [0.1])


class TestSweepStore:
    def _batch(self) -> SweepBatch:
        return SweepBatch(
            sweep_id=compute_sweep_id(DIGEST, PARAMS, [0.2], [0.1]),
            matrix_digest=DIGEST,
            base_parameters={"min_genes": 2},
            points=(
                SweepPoint(gamma=0.2, epsilon=0.1, job_id="job-" + "0" * 16),
            ),
            created_at=1.0,
        )

    def test_round_trip(self, tmp_path):
        store = SweepStore(tmp_path / "sweeps")
        batch = self._batch()
        store.save(batch)
        again = store.get(batch.sweep_id)
        assert again is not None
        assert again.to_dict() == batch.to_dict()

    def test_unknown_id_is_none(self, tmp_path):
        store = SweepStore(tmp_path / "sweeps")
        assert store.get("sweep-" + "0" * 16) is None

    def test_malformed_id_is_a_miss(self, tmp_path):
        # A path-traversal-shaped id must never touch the filesystem;
        # save refuses it, get treats it as unknown.
        store = SweepStore(tmp_path / "sweeps")
        assert store.get("../escape") is None
        with pytest.raises(KeyError):
            store._path("../escape")

    def test_list_sweeps(self, tmp_path):
        store = SweepStore(tmp_path / "sweeps")
        batch = self._batch()
        store.save(batch)
        assert [b.sweep_id for b in store.list_sweeps()] == [
            batch.sweep_id
        ]

    def test_batch_distinct_gammas(self):
        batch = SweepBatch(
            sweep_id="sweep-" + "1" * 16,
            matrix_digest=DIGEST,
            base_parameters={},
            points=(
                SweepPoint(gamma=0.2, epsilon=0.1, job_id="job-a"),
                SweepPoint(gamma=0.2, epsilon=0.2, job_id="job-b"),
                SweepPoint(gamma=0.3, epsilon=0.1, job_id="job-c"),
            ),
            created_at=1.0,
        )
        assert batch.gammas == (0.2, 0.3)
        assert batch.job_ids == ("job-a", "job-b", "job-c")
