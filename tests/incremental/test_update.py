"""Delta-updated kernels/indexes must be bit-identical to cold builds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import RegulationKernel
from repro.core.regulation import gene_thresholds
from repro.core.rwave import RWaveIndex
from repro.incremental import (
    AppendConditions,
    AppendGenes,
    DropGenes,
    apply_delta,
    update_index,
    update_kernel,
)
from tests.incremental.conftest import bimodal_matrix

GAMMA = 0.6


def _cold_kernel(matrix):
    return RegulationKernel(
        matrix.values, gene_thresholds(matrix, GAMMA)
    )


def _assert_kernels_identical(updated, matrix):
    cold = _cold_kernel(matrix)
    assert updated.packed.shape == cold.packed.shape
    np.testing.assert_array_equal(updated.packed, cold.packed)


def _assert_indexes_identical(updated, matrix):
    cold = RWaveIndex(matrix, GAMMA)
    np.testing.assert_array_equal(updated.thresholds, cold.thresholds)
    np.testing.assert_array_equal(updated.max_up, cold.max_up)
    np.testing.assert_array_equal(updated.max_down, cold.max_down)
    for mine, theirs in zip(updated.models, cold.models):
        assert mine.order.tolist() == theirs.order.tolist()
        assert mine.max_chain_up.tolist() == theirs.max_chain_up.tolist()
        assert (
            mine.max_chain_down.tolist() == theirs.max_chain_down.tolist()
        )


class TestKernelAppendConditions:
    # Condition counts straddling byte boundaries: the packed axis is
    # ceil(C/8) bytes, so crossing 8 and 16 exercises re-packing where
    # old bits land at new bit offsets.
    @pytest.mark.parametrize("n_old", [5, 7, 8, 9, 16])
    @pytest.mark.parametrize("n_new", [1, 3])
    def test_bit_identical_across_byte_boundaries(self, n_old, n_new):
        parent = bimodal_matrix(9, n_old, seed=n_old)
        rng = np.random.default_rng(n_old * 100 + n_new)
        delta = AppendConditions(
            names=tuple(f"new{i}" for i in range(n_new)),
            values=rng.uniform(0.0, 10.0, size=(n_new, parent.n_genes)),
        )
        child = apply_delta(parent, delta)
        parent_kernel = _cold_kernel(parent)
        update = update_kernel(
            parent_kernel, parent, child, delta, gamma=GAMMA
        )
        _assert_kernels_identical(update.kernel, child)
        assert update.reused_planes + update.rebuilt_planes == (
            parent.n_genes
        )

    def test_in_range_append_reuses_every_plane(self):
        parent = bimodal_matrix(8, 10, seed=3)
        # One new value per gene strictly inside its [min, max]: every
        # Eq. 4 threshold is float-identical, so no plane rebuilds cold.
        mid = (
            parent.values.min(axis=1) + parent.values.max(axis=1)
        ) / 2.0
        delta = AppendConditions(names=("mid",), values=mid[None, :])
        child = apply_delta(parent, delta)
        update = update_kernel(
            _cold_kernel(parent), parent, child, delta, gamma=GAMMA
        )
        assert update.reused_planes == parent.n_genes
        assert update.rebuilt_planes == 0
        _assert_kernels_identical(update.kernel, child)

    def test_range_widening_append_rebuilds_that_gene(self):
        parent = bimodal_matrix(6, 9, seed=4)
        new = (
            (parent.values.min(axis=1) + parent.values.max(axis=1)) / 2.0
        )
        new[2] = parent.values[2].max() + 5.0  # widen gene 2's range
        delta = AppendConditions(names=("wide",), values=new[None, :])
        child = apply_delta(parent, delta)
        update = update_kernel(
            _cold_kernel(parent), parent, child, delta, gamma=GAMMA
        )
        assert update.rebuilt_planes == 1
        assert update.reused_planes == parent.n_genes - 1
        _assert_kernels_identical(update.kernel, child)


class TestKernelGeneDeltas:
    def test_append_genes_bit_identical(self):
        parent = bimodal_matrix(7, 9, seed=5)
        delta = AppendGenes(
            names=("a", "b"),
            values=bimodal_matrix(2, 9, seed=6).values,
        )
        child = apply_delta(parent, delta)
        update = update_kernel(
            _cold_kernel(parent), parent, child, delta, gamma=GAMMA
        )
        assert update.reused_planes == parent.n_genes
        assert update.rebuilt_planes == 2
        _assert_kernels_identical(update.kernel, child)

    def test_drop_genes_bit_identical(self):
        parent = bimodal_matrix(8, 9, seed=8)
        delta = DropGenes(
            genes=(parent.gene_names[0], parent.gene_names[5])
        )
        child = apply_delta(parent, delta)
        update = update_kernel(
            _cold_kernel(parent), parent, child, delta, gamma=GAMMA
        )
        assert update.reused_planes == child.n_genes
        assert update.rebuilt_planes == 0
        _assert_kernels_identical(update.kernel, child)

    def test_shape_mismatch_rejected(self):
        parent = bimodal_matrix(6, 8, seed=9)
        other = bimodal_matrix(6, 8, seed=10)
        delta = AppendGenes(names=("x",), values=np.zeros((1, 8)))
        child = apply_delta(parent, delta)
        wrong = apply_delta(other, delta)
        with pytest.raises(ValueError):
            update_kernel(
                _cold_kernel(parent),
                parent,
                ExpressionMatrix_like_wrong_shape(wrong),
                delta,
                gamma=GAMMA,
            )


def ExpressionMatrix_like_wrong_shape(matrix):
    """A child whose shape does not fit parent + delta."""
    from repro.matrix.expression import ExpressionMatrix

    return ExpressionMatrix(
        np.hstack([matrix.values, matrix.values[:, :1]])
    )


class TestIndexUpdate:
    def test_append_genes_splices_models(self):
        parent = bimodal_matrix(7, 9, seed=11)
        delta = AppendGenes(
            names=("a",), values=bimodal_matrix(1, 9, seed=12).values
        )
        child = apply_delta(parent, delta)
        parent_index = RWaveIndex(parent, GAMMA)
        update = update_index(parent_index, child, delta)
        assert update.reused_models == parent.n_genes
        assert update.rebuilt_models == 1
        _assert_indexes_identical(update.index, child)

    def test_drop_genes_renumbers_survivors(self):
        parent = bimodal_matrix(8, 9, seed=13)
        delta = DropGenes(genes=(parent.gene_names[2],))
        child = apply_delta(parent, delta)
        parent_index = RWaveIndex(parent, GAMMA)
        update = update_index(parent_index, child, delta)
        assert update.reused_models == child.n_genes
        assert [m.gene for m in update.index.models] == list(
            range(child.n_genes)
        )
        # The parent's own models keep their original numbering (the
        # cached parent index must never be mutated).
        assert [m.gene for m in parent_index.models] == list(
            range(parent.n_genes)
        )
        _assert_indexes_identical(update.index, child)

    def test_append_conditions_rebuilds_cold(self):
        parent = bimodal_matrix(6, 8, seed=14)
        rng = np.random.default_rng(15)
        delta = AppendConditions(
            names=("n1",),
            values=rng.uniform(0.0, 10.0, size=(1, parent.n_genes)),
        )
        child = apply_delta(parent, delta)
        update = update_index(RWaveIndex(parent, GAMMA), child, delta)
        assert update.reused_models == 0
        _assert_indexes_identical(update.index, child)

    def test_foreign_parent_rejected(self):
        parent = bimodal_matrix(6, 8, seed=16)
        foreign = bimodal_matrix(6, 8, seed=17)
        delta = AppendGenes(names=("x",), values=np.full((1, 8), 5.0))
        child = apply_delta(parent, delta)
        with pytest.raises(ValueError, match="lineage"):
            update_index(RWaveIndex(foreign, GAMMA), child, delta)
