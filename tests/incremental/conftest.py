"""Shared builders for the incremental-mining tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrix.expression import ExpressionMatrix


def bimodal_matrix(
    n_genes: int, n_conditions: int, *, seed: int = 0
) -> ExpressionMatrix:
    """A matrix whose genes flip between two per-gene levels.

    Bimodal rows give every gene a wide range (so gamma thresholds are
    meaningful) and plenty of up-regulation bits, which makes kernels,
    indexes and shard plans non-trivial without being huge.
    """
    rng = np.random.default_rng(seed)
    values = np.zeros((n_genes, n_conditions))
    for gene in range(n_genes):
        low, high = sorted(rng.uniform(0.0, 10.0, size=2))
        if high - low < 2.0:
            high = low + 2.0
        values[gene] = rng.choice([low, high], size=n_conditions)
    return ExpressionMatrix(values)


@pytest.fixture
def base_matrix() -> ExpressionMatrix:
    return bimodal_matrix(10, 8, seed=7)
