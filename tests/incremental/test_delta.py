"""Typed deltas, apply_delta, and the revision lineage store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.incremental import (
    AppendConditions,
    AppendGenes,
    DropGenes,
    MatrixRevision,
    RevisionStore,
    apply_delta,
    delta_from_dict,
    delta_to_dict,
)
from repro.matrix.summary import matrix_digest


class TestDeltaValidation:
    def test_names_must_be_unique(self):
        with pytest.raises(ValueError, match="unique"):
            AppendGenes(names=("a", "a"), values=np.zeros((2, 3)))

    def test_names_must_be_nonempty(self):
        with pytest.raises(ValueError, match="at least one"):
            DropGenes(genes=())

    def test_values_must_match_names(self):
        with pytest.raises(ValueError, match="one row per"):
            AppendConditions(names=("c9",), values=np.zeros((2, 3)))

    def test_values_must_be_finite(self):
        with pytest.raises(ValueError, match="finite"):
            AppendGenes(names=("g",), values=[[1.0, np.nan]])

    def test_round_trip_through_dict(self):
        for delta in (
            AppendConditions(names=("c9", "c10"), values=np.ones((2, 3))),
            AppendGenes(names=("gX",), values=np.ones((1, 4))),
            DropGenes(genes=("g1", "g2")),
        ):
            again = delta_from_dict(delta_to_dict(delta))
            assert type(again) is type(delta)
            assert delta_to_dict(again) == delta_to_dict(delta)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown delta kind"):
            delta_from_dict({"kind": "transpose"})


class TestApplyDelta:
    def test_append_conditions(self, base_matrix):
        delta = AppendConditions(
            names=("new1", "new2"),
            values=np.ones((2, base_matrix.n_genes)),
        )
        child = apply_delta(base_matrix, delta)
        assert child.n_conditions == base_matrix.n_conditions + 2
        assert child.n_genes == base_matrix.n_genes
        np.testing.assert_array_equal(
            child.values[:, : base_matrix.n_conditions], base_matrix.values
        )
        np.testing.assert_array_equal(child.values[:, -2:], 1.0)
        assert child.condition_names[-2:] == ("new1", "new2")

    def test_append_genes(self, base_matrix):
        delta = AppendGenes(
            names=("gX",), values=np.zeros((1, base_matrix.n_conditions))
        )
        child = apply_delta(base_matrix, delta)
        assert child.n_genes == base_matrix.n_genes + 1
        np.testing.assert_array_equal(
            child.values[:-1], base_matrix.values
        )
        assert child.gene_names[-1] == "gX"

    def test_drop_genes_preserves_order(self, base_matrix):
        victims = (base_matrix.gene_names[1], base_matrix.gene_names[4])
        child = apply_delta(base_matrix, DropGenes(genes=victims))
        kept = [
            name
            for name in base_matrix.gene_names
            if name not in victims
        ]
        assert list(child.gene_names) == kept

    def test_wrong_width_rejected(self, base_matrix):
        with pytest.raises(ValueError, match="columns"):
            apply_delta(
                base_matrix,
                AppendGenes(names=("gX",), values=np.zeros((1, 3))),
            )

    def test_clashing_name_rejected(self, base_matrix):
        with pytest.raises(ValueError, match="already present"):
            apply_delta(
                base_matrix,
                AppendGenes(
                    names=(base_matrix.gene_names[0],),
                    values=np.zeros((1, base_matrix.n_conditions)),
                ),
            )

    def test_unknown_drop_rejected(self, base_matrix):
        with pytest.raises(ValueError, match="unknown gene"):
            apply_delta(base_matrix, DropGenes(genes=("nope",)))

    def test_cannot_drop_every_gene(self, base_matrix):
        with pytest.raises(ValueError, match="every gene"):
            apply_delta(
                base_matrix, DropGenes(genes=base_matrix.gene_names)
            )


class TestRevisionStore:
    def _revision(self, base_matrix) -> MatrixRevision:
        delta = AppendGenes(
            names=("gX",), values=np.zeros((1, base_matrix.n_conditions))
        )
        child = apply_delta(base_matrix, delta)
        return MatrixRevision(
            parent_digest=matrix_digest(base_matrix),
            child_digest=matrix_digest(child),
            delta=delta_to_dict(delta),
            created_at=1.0,
        )

    def test_round_trip(self, tmp_path, base_matrix):
        store = RevisionStore(tmp_path / "revisions")
        revision = self._revision(base_matrix)
        store.save(revision)
        again = store.get(revision.child_digest)
        assert again is not None
        assert again.to_dict() == revision.to_dict()

    def test_unknown_digest_is_none(self, tmp_path):
        store = RevisionStore(tmp_path / "revisions")
        assert store.get("0" * 64) is None

    def test_children_of(self, tmp_path, base_matrix):
        store = RevisionStore(tmp_path / "revisions")
        revision = self._revision(base_matrix)
        store.save(revision)
        assert [
            r.child_digest for r in store.children_of(revision.parent_digest)
        ] == [revision.child_digest]
        assert store.children_of(revision.child_digest) == []

    def test_no_op_revision_rejected(self, base_matrix):
        digest = matrix_digest(base_matrix)
        with pytest.raises(ValueError, match="alias"):
            MatrixRevision(
                parent_digest=digest,
                child_digest=digest,
                delta={"kind": "drop_genes", "genes": ["g1"]},
                created_at=1.0,
            )
