"""DirtyShardPlanner: dirty/clean classification and its soundness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.miner import mine_reg_clusters
from repro.core.params import MiningParameters
from repro.incremental import (
    AppendConditions,
    AppendGenes,
    DirtyShardPlanner,
    DropGenes,
    apply_delta,
)
from repro.incremental.planner import (
    REASON_APPENDED_START,
    REASON_REACHES_APPENDED,
)
from tests.incremental.conftest import bimodal_matrix

GAMMA = 0.6


@pytest.fixture
def planner() -> DirtyShardPlanner:
    return DirtyShardPlanner()


class TestClassification:
    def test_flat_appended_gene_is_full_reuse(self, planner, base_matrix):
        # A constant gene has zero range, so it carries no up-bits at
        # all — it cannot influence any shard.
        delta = AppendGenes(
            names=("flat",),
            values=np.full((1, base_matrix.n_conditions), 5.0),
        )
        child = apply_delta(base_matrix, delta)
        plan = planner.plan(base_matrix, child, delta, GAMMA)
        assert plan.is_full_reuse
        assert plan.n_shards == child.n_conditions
        assert plan.reuse_fraction() == 1.0

    def test_global_max_condition_dirties_everything(
        self, planner, base_matrix
    ):
        # A condition above every gene's maximum is up-regulated
        # against every old condition for every gene: every shard
        # reaches it.
        top = base_matrix.values.max() + 100.0
        delta = AppendConditions(
            names=("top",),
            values=np.full((1, base_matrix.n_genes), top),
        )
        child = apply_delta(base_matrix, delta)
        plan = planner.plan(base_matrix, child, delta, GAMMA)
        assert plan.is_full_rebuild
        assert plan.reasons[base_matrix.n_conditions] == (
            REASON_APPENDED_START
        )
        assert any(
            reason == REASON_REACHES_APPENDED
            for shard, reason in plan.reasons.items()
            if shard < base_matrix.n_conditions
        )

    def test_appended_shards_are_always_dirty(self, planner, base_matrix):
        mid = (
            base_matrix.values.min(axis=1) + base_matrix.values.max(axis=1)
        ) / 2.0
        delta = AppendConditions(names=("mid",), values=mid[None, :])
        child = apply_delta(base_matrix, delta)
        plan = planner.plan(base_matrix, child, delta, GAMMA)
        assert base_matrix.n_conditions in plan.dirty_shards
        assert plan.reasons[base_matrix.n_conditions] == (
            REASON_APPENDED_START
        )

    def test_dirty_gene_names_reported(self, planner, base_matrix):
        delta = DropGenes(genes=(base_matrix.gene_names[0],))
        child = apply_delta(base_matrix, delta)
        plan = planner.plan(base_matrix, child, delta, GAMMA)
        assert plan.dirty_genes == (base_matrix.gene_names[0],)

    def test_plan_round_trips_to_dict(self, planner, base_matrix):
        delta = AppendGenes(
            names=("flat",),
            values=np.full((1, base_matrix.n_conditions), 5.0),
        )
        child = apply_delta(base_matrix, delta)
        payload = planner.plan(base_matrix, child, delta, GAMMA).to_dict()
        assert payload["kind"] == "append_genes"
        assert len(payload["clean_shards"]) == child.n_conditions


class TestSoundness:
    """Clean shards must mine identically on parent and child."""

    PARAMS = MiningParameters(
        min_genes=2, min_conditions=2, gamma=GAMMA, epsilon=0.1
    )

    def _clusters_by_shard(self, matrix):
        result = mine_reg_clusters(
            matrix,
            min_genes=self.PARAMS.min_genes,
            min_conditions=self.PARAMS.min_conditions,
            gamma=self.PARAMS.gamma,
            epsilon=self.PARAMS.epsilon,
        )
        by_shard = {}
        for cluster in result.clusters:
            by_shard.setdefault(cluster.chain[0], []).append(
                (cluster.chain, frozenset(cluster.genes))
            )
        return by_shard

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_clean_shards_identical_under_random_deltas(self, seed):
        planner = DirtyShardPlanner()
        parent = bimodal_matrix(8, 7, seed=seed)
        rng = np.random.default_rng(seed + 50)
        deltas = [
            AppendConditions(
                names=("n1",),
                values=rng.uniform(0, 10, size=(1, parent.n_genes)),
            ),
            AppendGenes(
                names=("gA",),
                values=rng.uniform(0, 10, size=(1, parent.n_conditions)),
            ),
            DropGenes(genes=(parent.gene_names[seed % parent.n_genes],)),
        ]
        for delta in deltas:
            child = apply_delta(parent, delta)
            plan = planner.plan(parent, child, delta, GAMMA)
            parent_shards = self._clusters_by_shard(parent)
            child_shards = self._clusters_by_shard(child)
            for shard in plan.clean_shards:
                parent_clusters = {
                    (chain, genes)
                    for chain, genes in parent_shards.get(shard, [])
                }
                child_clusters = set(child_shards.get(shard, []))
                if isinstance(delta, DropGenes):
                    # Gene ids shift after a drop; compare by resolving
                    # parent ids to names and back to child ids.
                    dropped = set(delta.genes)
                    remap = {}
                    new_id = 0
                    for old_id, name in enumerate(parent.gene_names):
                        if name not in dropped:
                            remap[old_id] = new_id
                            new_id += 1
                    assert all(
                        g in remap
                        for __, genes in parent_clusters
                        for g in genes
                    ), "dropped gene appeared in a clean shard's cluster"
                    parent_clusters = {
                        (chain, frozenset(remap[g] for g in genes))
                        for chain, genes in parent_clusters
                    }
                assert parent_clusters == child_clusters, (
                    f"clean shard {shard} diverged under "
                    f"{delta.kind} (seed {seed})"
                )
