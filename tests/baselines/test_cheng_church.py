"""Unit tests for the Cheng-Church MSR baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.cheng_church import (
    ChengChurchMiner,
    mean_squared_residue,
    mine_msr_biclusters,
)
from repro.matrix.expression import ExpressionMatrix


class TestMSR:
    def test_constant_block_zero(self):
        assert mean_squared_residue(np.full((3, 4), 7.0)) == 0.0

    def test_pure_shifting_zero(self):
        base = np.array([1.0, 4.0, 2.0, 9.0])
        block = np.vstack([base, base + 3.0, base - 1.0])
        assert mean_squared_residue(block) == pytest.approx(0.0)

    def test_additive_row_col_model_zero(self):
        rows = np.array([[0.0], [2.0], [5.0]])
        cols = np.array([[0.0, 1.0, 4.0]])
        assert mean_squared_residue(rows + cols) == pytest.approx(0.0)

    def test_scaling_positive(self):
        base = np.array([1.0, 4.0, 2.0, 9.0])
        block = np.vstack([base, 3.0 * base])
        assert mean_squared_residue(block) > 0.5

    def test_negative_correlation_positive(self):
        base = np.array([1.0, 4.0, 2.0, 9.0])
        block = np.vstack([base, -base + 10.0])
        assert mean_squared_residue(block) > 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_squared_residue(np.zeros((0, 3)))


class TestMiner:
    def test_recovers_planted_additive_bicluster(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0, 100, size=(30, 12))
        base = np.linspace(0, 20, 6)
        for k, gene in enumerate(range(5, 15)):
            values[gene, 3:9] = base + 5.0 * k
        m = ExpressionMatrix(values)
        clusters = mine_msr_biclusters(m, delta=0.1, n_clusters=1, seed=1)
        assert clusters
        genes = set(clusters[0].genes)
        conditions = set(clusters[0].conditions)
        planted_genes = set(range(5, 15))
        planted_conditions = set(range(3, 9))
        assert len(genes & planted_genes) >= 8
        assert planted_conditions <= conditions or len(
            conditions & planted_conditions
        ) >= 5

    def test_first_cluster_meets_delta(self):
        """The first cluster is measured on the pristine matrix; later
        ones are only guaranteed delta on the *masked* matrix (the
        original algorithm's masking artifact)."""
        rng = np.random.default_rng(4)
        m = ExpressionMatrix(rng.uniform(0, 10, size=(20, 8)))
        clusters = ChengChurchMiner(m, delta=2.0, n_clusters=1, seed=0).mine()
        assert clusters
        assert mean_squared_residue(clusters[0].submatrix(m)) <= 2.0

    def test_masking_changes_subsequent_clusters(self):
        rng = np.random.default_rng(5)
        m = ExpressionMatrix(rng.uniform(0, 10, size=(15, 8)))
        clusters = mine_msr_biclusters(m, delta=3.0, n_clusters=3, seed=2)
        assert len({c.cells() for c in clusters}) == len(clusters)

    def test_parameter_validation(self):
        m = ExpressionMatrix(np.zeros((3, 3)))
        with pytest.raises(ValueError, match="delta"):
            ChengChurchMiner(m, delta=-1.0)
        with pytest.raises(ValueError, match="alpha"):
            ChengChurchMiner(m, delta=1.0, alpha=0.5)
        with pytest.raises(ValueError, match="n_clusters"):
            ChengChurchMiner(m, delta=1.0, n_clusters=0)
