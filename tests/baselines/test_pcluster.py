"""Unit tests for the pCluster (pure shifting) baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.pcluster import (
    PClusterMiner,
    is_pcluster,
    max_pscore,
    mine_pclusters,
    pscore,
)
from repro.matrix.expression import ExpressionMatrix

# Figure 1 of the paper: P1 = P2 - 5 = P3 - 15 = P4 = P5/1.5 = P6/3.
P1 = np.array([10.0, 14.0, 9.0, 18.0, 25.0])
PATTERNS = {
    "P1": P1,
    "P2": P1 + 5.0,
    "P3": P1 + 15.0,
    "P4": P1.copy(),
    "P5": 1.5 * P1,
    "P6": 3.0 * P1,
}


class TestPScore:
    def test_2x2_definition(self):
        block = np.array([[1.0, 3.0], [2.0, 5.0]])
        # |(1-3) - (2-5)| = 1
        assert pscore(block) == pytest.approx(1.0)

    def test_shape_check(self):
        with pytest.raises(ValueError, match="2x2"):
            pscore(np.zeros((2, 3)))

    def test_pure_shifting_scores_zero(self):
        sub = np.vstack([PATTERNS["P1"], PATTERNS["P2"], PATTERNS["P3"]])
        assert max_pscore(sub) == pytest.approx(0.0)

    def test_scaling_scores_large(self):
        """Figure 1's scaling family is invisible to the pScore model."""
        sub = np.vstack([PATTERNS["P1"], PATTERNS["P6"]])
        assert max_pscore(sub) > 10.0

    def test_max_pscore_equals_exhaustive(self):
        rng = np.random.default_rng(0)
        sub = rng.uniform(0, 10, size=(4, 5))
        worst = 0.0
        for i in range(4):
            for j in range(i + 1, 4):
                for a in range(5):
                    for b in range(a + 1, 5):
                        worst = max(
                            worst,
                            pscore(sub[np.ix_([i, j], [a, b])]),
                        )
        assert max_pscore(sub) == pytest.approx(worst)

    def test_degenerate_shapes_score_zero(self):
        assert max_pscore(np.zeros((1, 5))) == 0.0
        assert max_pscore(np.zeros((5, 1))) == 0.0

    def test_is_pcluster(self):
        sub = np.vstack([PATTERNS["P1"], PATTERNS["P2"]])
        assert is_pcluster(sub, 0.0)
        assert not is_pcluster(
            np.vstack([PATTERNS["P1"], PATTERNS["P5"]]), 1.0
        )
        with pytest.raises(ValueError):
            is_pcluster(sub, -1.0)


class TestMiner:
    def test_finds_planted_shifting_cluster(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 100, size=(6, 6))
        base = np.array([1.0, 9.0, 4.0, 30.0, 12.0, 7.0])
        values[0] = base
        values[1] = base + 10.0
        values[2] = base - 4.0
        m = ExpressionMatrix(values)
        clusters = mine_pclusters(m, delta=0.0, min_genes=3, min_conditions=6)
        assert any(
            set(c.genes) >= {0, 1, 2} and len(c.conditions) == 6
            for c in clusters
        )

    def test_misses_shifting_and_scaling_family(self, tiny_matrix):
        """g1..g3 of the fixture are affinely related with distinct
        scalings; the pCluster model cannot group all three."""
        clusters = mine_pclusters(
            tiny_matrix, delta=0.5, min_genes=3, min_conditions=4
        )
        assert not any(
            set(c.genes) >= {0, 1, 2} and len(c.conditions) >= 4
            for c in clusters
        )

    def test_results_are_maximal(self):
        base = np.array([0.0, 2.0, 7.0, 5.0])
        m = ExpressionMatrix([base, base + 1.0, base + 2.0])
        clusters = mine_pclusters(m, delta=0.0, min_genes=2, min_conditions=2)
        for a in clusters:
            for b in clusters:
                if a is not b:
                    assert not a.contains(b)

    def test_guardrails(self):
        m = ExpressionMatrix(np.zeros((2, 25)))
        with pytest.raises(ValueError, match="exponential"):
            PClusterMiner(m, delta=0.1)
        with pytest.raises(ValueError, match="at least 2"):
            PClusterMiner(
                ExpressionMatrix(np.zeros((2, 3))), delta=0.1, min_genes=1
            )
        with pytest.raises(ValueError, match=">= 0"):
            PClusterMiner(ExpressionMatrix(np.zeros((2, 3))), delta=-1.0)
