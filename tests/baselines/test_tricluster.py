"""Unit tests for the TriCluster-style (pure scaling) baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.tricluster import (
    TriClusterMiner,
    is_scaling_cluster,
    mine_scaling_clusters,
    ratio_range,
)
from repro.matrix.expression import ExpressionMatrix

BASE = np.array([10.0, 14.0, 9.0, 18.0, 25.0])


class TestRatioRange:
    def test_pure_scaling_is_zero(self):
        assert ratio_range(3.0 * BASE, BASE) == pytest.approx(0.0)

    def test_negative_scaling_is_zero(self):
        """A uniformly negative ratio is still a constant ratio."""
        assert ratio_range(-2.0 * BASE, BASE) == pytest.approx(0.0)

    def test_shifting_breaks_ratios(self):
        assert ratio_range(BASE + 5.0, BASE) > 0.1

    def test_sign_flip_is_infinite(self):
        a = np.array([1.0, -1.0])
        b = np.array([1.0, 1.0])
        assert ratio_range(a, b) == float("inf")

    def test_zero_denominator_is_infinite(self):
        assert ratio_range(BASE, np.zeros(5)) == float("inf")

    def test_empty_profiles(self):
        assert ratio_range(np.array([]), np.array([])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ratio_range(np.zeros(2), np.zeros(3))


class TestModelCheck:
    def test_scaling_family_accepted(self):
        sub = np.vstack([BASE, 1.5 * BASE, 3.0 * BASE])
        assert is_scaling_cluster(sub, 0.0)

    def test_figure1_shifting_family_rejected(self):
        sub = np.vstack([BASE, BASE + 5.0, BASE + 15.0])
        assert not is_scaling_cluster(sub, 0.1)

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            is_scaling_cluster(np.zeros((2, 2)), -0.1)


class TestMiner:
    def test_finds_planted_scaling_cluster(self):
        rng = np.random.default_rng(2)
        values = rng.uniform(1, 100, size=(6, 5))
        values[0] = BASE
        values[1] = 2.0 * BASE
        values[2] = 0.5 * BASE
        m = ExpressionMatrix(values)
        clusters = mine_scaling_clusters(
            m, epsilon=1e-9, min_genes=3, min_conditions=5
        )
        assert any(set(c.genes) >= {0, 1, 2} for c in clusters)

    def test_misses_shifting_and_scaling_family(self, tiny_matrix):
        clusters = mine_scaling_clusters(
            tiny_matrix, epsilon=0.05, min_genes=3, min_conditions=4
        )
        assert not any(
            set(c.genes) >= {0, 1, 2} and len(c.conditions) >= 4
            for c in clusters
        )

    def test_guardrails(self):
        with pytest.raises(ValueError, match="exponential"):
            TriClusterMiner(ExpressionMatrix(np.zeros((2, 25))), epsilon=0.1)
        with pytest.raises(ValueError, match="at least 2"):
            TriClusterMiner(
                ExpressionMatrix(np.zeros((2, 3))), epsilon=0.1, min_genes=0
            )
