"""Unit tests for the delta-cluster / FLOC-style baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.cheng_church import mean_squared_residue
from repro.baselines.delta_cluster import DeltaClusterMiner, mine_delta_clusters
from repro.matrix.expression import ExpressionMatrix


def planted_matrix():
    rng = np.random.default_rng(6)
    values = rng.uniform(0, 50, size=(20, 10))
    base = np.array([0.0, 10.0, 5.0, 20.0, 15.0])
    for k, gene in enumerate(range(4, 12)):
        values[gene, 2:7] = base + 3.0 * k
    return ExpressionMatrix(values), set(range(4, 12)), set(range(2, 7))


class TestMiner:
    def test_moves_reduce_residue(self):
        m, __, __ = planted_matrix()
        clusters = mine_delta_clusters(
            m, n_clusters=2, delta=0.5, seed=0, max_rounds=5
        )
        assert len(clusters) == 2
        for cluster in clusters:
            block = cluster.submatrix(m)
            # residue of the final cluster is far below a random block's
            assert mean_squared_residue(block) < mean_squared_residue(
                m.values
            )

    def test_finds_low_residue_region(self):
        m, genes, conditions = planted_matrix()
        clusters = mine_delta_clusters(
            m, n_clusters=3, delta=0.1, seed=1, max_rounds=8
        )
        best = min(
            mean_squared_residue(c.submatrix(m)) for c in clusters
        )
        assert best < 1.0

    def test_respects_minimum_shape(self):
        m, __, __ = planted_matrix()
        clusters = mine_delta_clusters(
            m, n_clusters=2, min_genes=3, min_conditions=3, seed=2
        )
        for cluster in clusters:
            assert len(cluster.genes) >= 3
            assert len(cluster.conditions) >= 3

    def test_deterministic_given_seed(self):
        m, __, __ = planted_matrix()
        a = mine_delta_clusters(m, n_clusters=1, seed=9, max_rounds=3)
        b = mine_delta_clusters(m, n_clusters=1, seed=9, max_rounds=3)
        assert a == b

    def test_parameter_validation(self):
        m = ExpressionMatrix(np.zeros((4, 4)))
        with pytest.raises(ValueError, match="n_clusters"):
            DeltaClusterMiner(m, n_clusters=0)
        with pytest.raises(ValueError, match="delta"):
            DeltaClusterMiner(m, delta=-1.0)
        with pytest.raises(ValueError, match="max_rounds"):
            DeltaClusterMiner(m, max_rounds=0)
