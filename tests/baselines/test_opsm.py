"""Unit tests for the OPSM baseline (Ben-Dor et al. — ref [3])."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.opsm import OPSMMiner, mine_opsm
from repro.matrix.expression import ExpressionMatrix


def planted_opsm_matrix():
    """20 rows, 8 columns; rows 0-7 increase along columns (2,5,0,7)."""
    rng = np.random.default_rng(11)
    values = rng.uniform(0, 10, size=(20, 8))
    order = [2, 5, 0, 7]
    for row in range(8):
        base = np.sort(rng.uniform(0, 10, size=4))
        for position, column in enumerate(order):
            values[row, column] = base[position]
    return ExpressionMatrix(values), tuple(order)


class TestMiner:
    def test_recovers_planted_order(self):
        matrix, order = planted_opsm_matrix()
        model = mine_opsm(matrix, model_size=4, beam_width=50)
        # the planted rows all support the model (possibly among others)
        assert set(range(8)) <= set(model.rows)
        assert model.order == order or model.support >= 8

    def test_support_rows_actually_increase(self):
        matrix, __ = planted_opsm_matrix()
        model = mine_opsm(matrix, model_size=3, beam_width=30)
        cols = matrix.values[:, list(model.order)]
        for row in model.rows:
            assert np.all(np.diff(cols[row]) > 0)

    def test_model_size_respected(self):
        matrix, __ = planted_opsm_matrix()
        for size in (2, 3, 5):
            model = mine_opsm(matrix, model_size=size, beam_width=20)
            assert model.size == size

    def test_support_decreases_with_model_size(self):
        matrix, __ = planted_opsm_matrix()
        supports = [
            mine_opsm(matrix, model_size=k, beam_width=50).support
            for k in (2, 4, 6)
        ]
        assert supports[0] >= supports[1] >= supports[2]

    def test_magnitudes_ignored(self):
        """The OPSM model groups rows whose magnitudes differ wildly —
        the tendency-model weakness the reg-cluster paper targets."""
        base = np.array([1.0, 2.0, 3.0, 4.0])
        matrix = ExpressionMatrix(
            np.vstack([base, 1000.0 * base, base + 0.001])
        )
        model = mine_opsm(matrix, model_size=4, beam_width=10)
        assert model.support == 3

    def test_parameter_validation(self):
        matrix = ExpressionMatrix(np.zeros((3, 4)))
        with pytest.raises(ValueError, match="model_size"):
            OPSMMiner(matrix, model_size=1)
        with pytest.raises(ValueError, match="exceeds"):
            OPSMMiner(matrix, model_size=9)
        with pytest.raises(ValueError, match="beam_width"):
            OPSMMiner(matrix, model_size=2, beam_width=0)
