"""Unit tests for the scalable (MDS seed-and-grow) pCluster miner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.pcluster import is_pcluster, mine_pclusters
from repro.baselines.pcluster_fast import (
    FastPClusterMiner,
    gene_pair_mds,
    mine_pclusters_fast,
)
from repro.matrix.expression import ExpressionMatrix


class TestGenePairMDS:
    def test_pure_shifting_pair_spans_everything(self):
        base = np.array([3.0, 1.0, 7.0, 2.0])
        assert gene_pair_mds(base, base + 5.0, 0.0, 2) == [(0, 1, 2, 3)]

    def test_windows_split_on_large_spread(self):
        x = np.array([0.0, 0.1, 5.0, 5.1])
        y = np.zeros(4)
        mds = gene_pair_mds(x, y, 0.2, 2)
        assert sorted(mds) == [(0, 1), (2, 3)]

    def test_min_conditions_filter(self):
        x = np.array([0.0, 9.0, 18.0])
        y = np.zeros(3)
        assert gene_pair_mds(x, y, 0.5, 2) == []

    def test_every_mds_is_delta_valid(self):
        rng = np.random.default_rng(0)
        x, y = rng.uniform(0, 10, size=(2, 12))
        for mds in gene_pair_mds(x, y, 1.0, 2):
            diffs = x[list(mds)] - y[list(mds)]
            assert diffs.max() - diffs.min() <= 1.0


class TestFastMiner:
    def planted(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0, 100, size=(12, 25))  # too wide for exact
        base = rng.uniform(0, 30, size=10)
        values[2, 5:15] = base
        values[5, 5:15] = base + 10.0
        values[8, 5:15] = base - 3.0
        return ExpressionMatrix(values)

    def test_handles_wide_matrices(self):
        matrix = self.planted()
        clusters = mine_pclusters_fast(
            matrix, delta=1e-9, min_genes=3, min_conditions=10
        )
        assert any(
            set(c.genes) >= {2, 5, 8} and len(c.conditions) == 10
            for c in clusters
        )

    def test_all_results_are_valid(self):
        matrix = self.planted()
        clusters = mine_pclusters_fast(
            matrix, delta=2.0, min_genes=2, min_conditions=4
        )
        assert clusters
        for cluster in clusters:
            assert is_pcluster(cluster.submatrix(matrix), 2.0)

    def test_agrees_with_exact_miner_on_planted_structure(self):
        """On a small matrix the heuristic finds the same top cluster the
        exact miner proves maximal."""
        rng = np.random.default_rng(2)
        values = rng.uniform(0, 100, size=(6, 6))
        base = np.array([1.0, 9.0, 4.0, 30.0, 12.0, 7.0])
        values[0] = base
        values[1] = base + 10.0
        values[3] = base - 4.0
        matrix = ExpressionMatrix(values)
        exact = mine_pclusters(
            matrix, delta=1e-9, min_genes=3, min_conditions=6
        )
        fast = mine_pclusters_fast(
            matrix, delta=1e-9, min_genes=3, min_conditions=6
        )
        exact_best = {(c.genes, c.conditions) for c in exact}
        fast_best = {(c.genes, c.conditions) for c in fast}
        assert exact_best & fast_best

    def test_widening_extends_condition_sets(self):
        base = np.array([0.0, 5.0, 2.0, 8.0, 1.0])
        matrix = ExpressionMatrix([base, base + 1.0, base - 2.0])
        clusters = mine_pclusters_fast(
            matrix, delta=1e-9, min_genes=3, min_conditions=2
        )
        assert any(len(c.conditions) == 5 for c in clusters)

    def test_parameter_validation(self):
        matrix = ExpressionMatrix(np.zeros((3, 3)))
        with pytest.raises(ValueError, match="delta"):
            FastPClusterMiner(matrix, delta=-1.0)
        with pytest.raises(ValueError, match="at least 2"):
            FastPClusterMiner(matrix, delta=0.1, min_genes=1)
        with pytest.raises(ValueError, match="max_seeds"):
            FastPClusterMiner(matrix, delta=0.1, max_seeds=0)
