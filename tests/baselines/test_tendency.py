"""Unit tests for the tendency (order-preserving) baseline.

Includes the paper's two arguments against tendency models: the Figure 4
outlier they wrongly accept, and the section 1.3 regulation-threshold
inconsistency.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.tendency import (
    TendencyMiner,
    mine_tendency_clusters,
    supports_order,
)
from repro.matrix.expression import ExpressionMatrix


class TestSupportsOrder:
    def test_non_descending(self):
        profile = np.array([5.0, 1.0, 3.0, 3.0])
        assert supports_order(profile, [1, 2, 3, 0])
        assert not supports_order(profile, [0, 1, 2, 3])

    def test_min_difference_strictness(self):
        profile = np.array([0.0, 1.0, 2.0])
        assert supports_order(profile, [0, 1, 2])
        assert not supports_order(profile, [0, 1, 2], min_difference=1.0)
        assert supports_order(profile, [0, 2], min_difference=1.5)

    def test_short_order(self):
        assert supports_order(np.array([1.0]), [0])


class TestMiner:
    def test_groups_synchronous_genes(self):
        values = np.array(
            [
                [1.0, 5.0, 3.0, 8.0],
                [10.0, 50.0, 30.0, 80.0],
                [0.1, 0.5, 0.3, 0.8],
                [8.0, 3.0, 5.0, 1.0],
            ]
        )
        m = ExpressionMatrix(values)
        clusters = mine_tendency_clusters(m, min_genes=3, min_conditions=4)
        assert any(
            c.order == (0, 2, 1, 3) and set(c.genes) == {0, 1, 2}
            for c in clusters
        )

    def test_figure4_outlier_is_grouped(self, running_example):
        """On {c2, c4, c8, c10}, the tendency model clusters all three
        genes together — the false positive reg-cluster avoids."""
        sub = running_example.submatrix(conditions=["c2", "c10", "c8", "c4"])
        clusters = mine_tendency_clusters(sub, min_genes=3, min_conditions=4)
        assert any(
            set(c.genes) == {0, 1, 2} and len(c.order) == 4 for c in clusters
        )

    def test_section13_threshold_inconsistency(self):
        """The sorted g2 values {15, 20, 43, 43.5, 44}: with threshold 0.8
        the adjacent-difference rule keeps c8-c4 and c4-c6 apart but the
        regulated pair c6-c8 cannot be expressed."""
        profile = np.array([15.0, 20.0, 43.0, 43.5, 44.0])
        m = ExpressionMatrix([profile])
        clusters = mine_tendency_clusters(
            m, min_genes=1, min_conditions=2, min_difference=0.8
        )
        orders = {c.order for c in clusters}
        # conditions 2,3,4 (values 43, 43.5, 44) can never chain together
        assert not any(
            {2, 3}.issubset(order) or {3, 4}.issubset(order)
            for order in orders
        )
        # yet 2 -> 4 (43 -> 44) differs by 1.0 > 0.8 and is forced into a
        # *separate* cluster from 0 -> 1 -> 2 chains that include 3
        assert any(order[-2:] == (2, 4) for order in orders)

    def test_emits_longest_sequences_only(self):
        m = ExpressionMatrix([[1.0, 2.0, 3.0], [1.0, 2.0, 3.0]])
        clusters = mine_tendency_clusters(m, min_genes=2, min_conditions=2)
        # the full order (0,1,2) subsumes its prefixes for the same genes
        assert (0, 1, 2) in {c.order for c in clusters}
        assert (0, 1) not in {c.order for c in clusters}

    def test_parameter_validation(self):
        m = ExpressionMatrix([[1.0, 2.0]])
        with pytest.raises(ValueError):
            TendencyMiner(m, min_genes=0)
        with pytest.raises(ValueError):
            TendencyMiner(m, min_conditions=1)
        with pytest.raises(ValueError):
            TendencyMiner(m, min_difference=-1.0)

    def test_shape_property(self):
        clusters = mine_tendency_clusters(
            ExpressionMatrix([[1.0, 2.0, 3.0]]), min_genes=1, min_conditions=3
        )
        assert clusters[0].shape == (1, 3)
