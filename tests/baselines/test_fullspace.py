"""Unit tests for the full-space clustering baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fullspace import (
    GeneClustering,
    correlation_distance_matrix,
    hierarchical_clusters,
    kmeans_clusters,
)
from repro.matrix.expression import ExpressionMatrix


def correlated_matrix():
    rng = np.random.default_rng(7)
    t = np.linspace(0, 1, 8)
    family_a = [np.sin(2 * np.pi * t) * s + rng.normal(0, 0.01, 8)
                for s in (1.0, 2.0, 3.0)]
    family_b = [t * s + rng.normal(0, 0.01, 8) for s in (1.0, 5.0, 2.0)]
    return ExpressionMatrix(np.vstack(family_a + family_b))


class TestDistance:
    def test_self_distance_zero(self):
        m = correlated_matrix()
        d = correlation_distance_matrix(m)
        assert np.allclose(np.diag(d), 0.0)

    def test_symmetry_and_range(self):
        d = correlation_distance_matrix(correlated_matrix())
        assert np.allclose(d, d.T)
        assert d.min() >= 0.0 and d.max() <= 2.0

    def test_perfect_correlation(self):
        base = np.array([1.0, 2.0, 3.0])
        m = ExpressionMatrix([base, 2.0 * base + 1.0, -base])
        d = correlation_distance_matrix(m)
        assert d[0, 1] == pytest.approx(0.0, abs=1e-12)
        assert d[0, 2] == pytest.approx(2.0, abs=1e-12)

    def test_constant_gene_distance_one(self):
        m = ExpressionMatrix([[1.0, 2.0, 3.0], [5.0, 5.0, 5.0]])
        d = correlation_distance_matrix(m)
        assert d[0, 1] == pytest.approx(1.0)


class TestHierarchical:
    def test_separates_families(self):
        clustering = hierarchical_clusters(correlated_matrix(), 2)
        labels = clustering.labels
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_n_clusters_bounds(self):
        m = correlated_matrix()
        with pytest.raises(ValueError):
            hierarchical_clusters(m, 0)
        with pytest.raises(ValueError):
            hierarchical_clusters(m, 7)

    def test_singleton_clusters(self):
        m = correlated_matrix()
        clustering = hierarchical_clusters(m, 6)
        assert sorted(len(c) for c in clustering.clusters()) == [1] * 6


class TestKMeans:
    def test_partitions_all_genes(self):
        clustering = kmeans_clusters(correlated_matrix(), 2, seed=0)
        assert len(clustering.labels) == 6
        assert sum(len(c) for c in clustering.clusters()) == 6

    def test_deterministic_given_seed(self):
        m = correlated_matrix()
        a = kmeans_clusters(m, 3, seed=4)
        b = kmeans_clusters(m, 3, seed=4)
        assert a == b

    def test_k_equals_n(self):
        m = correlated_matrix()
        clustering = kmeans_clusters(m, 6, seed=1)
        assert len(set(clustering.labels)) == 6

    def test_bounds(self):
        with pytest.raises(ValueError):
            kmeans_clusters(correlated_matrix(), 0)


class TestGeneClustering:
    def test_members_lookup(self):
        clustering = GeneClustering(labels=(0, 1, 0), n_clusters=2)
        assert clustering.members(0) == (0, 2)
        assert clustering.members(1) == (1,)

    def test_empty_clusters_omitted(self):
        clustering = GeneClustering(labels=(0, 0), n_clusters=3)
        assert clustering.clusters() == [(0, 1)]
