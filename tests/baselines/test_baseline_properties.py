"""Property-based tests on the baseline models (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.cheng_church import mean_squared_residue
from repro.baselines.pcluster import max_pscore, pscore
from repro.baselines.pcluster_fast import gene_pair_mds
from repro.baselines.tricluster import ratio_range

profiles = st.lists(
    st.floats(min_value=-50, max_value=50, allow_nan=False, width=32),
    min_size=2,
    max_size=10,
)

pairs = st.tuples(profiles, profiles).filter(
    lambda pair: len(pair[0]) == len(pair[1])
)


def paired(draw_len=st.integers(min_value=2, max_value=10)):
    @st.composite
    def build(draw):
        n = draw(draw_len)
        row = st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False,
                      width=32),
            min_size=n,
            max_size=n,
        )
        return np.asarray(draw(row)), np.asarray(draw(row))
    return build()


@given(paired())
@settings(max_examples=200, deadline=None)
def test_pscore_shift_invariance(pair):
    """Shifting either profile never changes the pScore structure."""
    x, y = pair
    base = max_pscore(np.vstack([x, y]))
    shifted = max_pscore(np.vstack([x + 7.5, y]))
    # tolerance: the shift perturbs each subtraction by at most one ulp
    assert abs(base - shifted) < 1e-9


@given(paired())
@settings(max_examples=200, deadline=None)
def test_max_pscore_is_difference_range(pair):
    """The closed form equals the exhaustive 2x2 maximum."""
    x, y = pair
    exhaustive = 0.0
    n = len(x)
    for a in range(n):
        for b in range(a + 1, n):
            exhaustive = max(
                exhaustive,
                pscore(np.array([[x[a], x[b]], [y[a], y[b]]])),
            )
    assert abs(max_pscore(np.vstack([x, y])) - exhaustive) < 1e-12


@given(paired(), st.floats(min_value=0, max_value=20))
@settings(max_examples=150, deadline=None)
def test_gene_pair_mds_windows_are_valid_and_maximal(pair, delta):
    x, y = pair
    windows = gene_pair_mds(x, y, delta, 2)
    differences = x - y
    for window in windows:
        spread = differences[list(window)]
        assert spread.max() - spread.min() <= delta
        outside = [c for c in range(len(x)) if c not in window]
        for extra in outside:
            trial = np.append(spread, differences[extra])
            # adding any outside condition breaks the window
            assert trial.max() - trial.min() > delta


@given(profiles, st.floats(min_value=0.1, max_value=5))
@settings(max_examples=200, deadline=None)
def test_ratio_range_scale_invariance(values, factor):
    """Scaling a profile by a positive constant keeps ratios constant."""
    x = np.asarray(values)
    if np.any(x == 0):
        return
    assert ratio_range(factor * x, x) < 1e-6


@given(paired())
@settings(max_examples=150, deadline=None)
def test_msr_shift_invariance(pair):
    """MSR is invariant under row and column shifts."""
    x, y = pair
    block = np.vstack([x, y])
    shifted = block + 3.0  # global shift
    row_shifted = block + np.array([[1.0], [-2.0]])
    base = mean_squared_residue(block)
    assert abs(mean_squared_residue(shifted) - base) < 1e-8
    assert abs(mean_squared_residue(row_shifted) - base) < 1e-8
