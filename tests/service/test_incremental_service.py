"""Service-level incremental mining: revisions, stitching, sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.incremental import (
    AppendConditions,
    AppendGenes,
    DropGenes,
    apply_delta,
)
from repro.incremental.delta import delta_to_dict
from repro.matrix.summary import matrix_digest
from repro.core.params import MiningParameters
from repro.service.jobs import JobState
from repro.service.resilience import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.service.service import MiningService
from tests.incremental.conftest import bimodal_matrix

PARAMS = MiningParameters(
    min_genes=2, min_conditions=2, gamma=0.6, epsilon=0.1
)
NO_RETRY = RetryPolicy(max_retries=0, backoff_base=0.0, jitter=0.0)


@pytest.fixture
def service(tmp_path) -> MiningService:
    return MiningService(tmp_path / "store")


@pytest.fixture
def matrix():
    return bimodal_matrix(10, 8, seed=7)


def run_done(service, record):
    service.run_pending()
    done = service.status(record.job_id)
    assert done.state is JobState.DONE, done.error
    return done


def scratch_clusters(tmp_path, child_matrix, params=PARAMS):
    """The child matrix mined from scratch in a pristine service."""
    clean = MiningService(tmp_path / "scratch")
    record = clean.submit(child_matrix, params)
    clean.run_pending()
    return clean.result(record.job_id)["clusters"]


def assert_bit_identical(payload, reference_clusters):
    """The mining *output* must match a from-scratch run exactly.

    Search statistics are effort counters, not output: shards stitched
    from the parent report zero nodes by design, so only the clusters
    (names, chains, memberships, in order) are compared.
    """
    assert payload["clusters"] == reference_clusters


class TestRevisionJobs:
    def test_flat_gene_append_is_full_reuse(
        self, service, matrix, tmp_path
    ):
        parent = service.submit(matrix, PARAMS)
        run_done(service, parent)
        delta = AppendGenes(
            names=("flat",),
            values=np.full((1, matrix.n_conditions), 5.0),
        )
        revision, record = service.submit_revision(
            matrix_digest(matrix), delta, PARAMS
        )
        done = run_done(service, record)
        # Every shard stitched, zero mined, and still bit-identical to
        # mining the child from scratch.
        assert done.reused_shards == list(range(matrix.n_conditions))
        assert done.revision_parent == parent.job_id
        assert done.kernel_build == "delta"
        assert done.progress["nodes_expanded"] == 0
        assert_bit_identical(
            service.result(record.job_id),
            scratch_clusters(tmp_path, apply_delta(matrix, delta)),
        )

    def test_all_dirty_delta_runs_as_plain_job(
        self, service, matrix, tmp_path
    ):
        parent = service.submit(matrix, PARAMS)
        run_done(service, parent)
        # A condition above every gene's max is reachable from every
        # shard: nothing can be reused.
        top = matrix.values.max() + 100.0
        delta = AppendConditions(
            names=("top",), values=np.full((1, matrix.n_genes), top)
        )
        revision, record = service.submit_revision(
            matrix_digest(matrix), delta, PARAMS
        )
        done = run_done(service, record)
        assert done.reused_shards is None
        assert done.revision_parent is None
        assert_bit_identical(
            service.result(record.job_id),
            scratch_clusters(tmp_path, apply_delta(matrix, delta)),
        )

    @pytest.mark.parametrize(
        "make_delta",
        [
            lambda m: AppendConditions(
                names=("n1",),
                values=np.random.default_rng(1).uniform(
                    0, 10, size=(1, m.n_genes)
                ),
            ),
            lambda m: AppendGenes(
                names=("gA",),
                values=bimodal_matrix(1, m.n_conditions, seed=21).values,
            ),
            lambda m: DropGenes(genes=(m.gene_names[3],)),
        ],
        ids=["append_conditions", "append_genes", "drop_genes"],
    )
    def test_stitched_result_bit_identical_to_scratch(
        self, service, matrix, tmp_path, make_delta
    ):
        service.run_pending()
        parent = service.submit(matrix, PARAMS)
        run_done(service, parent)
        delta = make_delta(matrix)
        revision, record = service.submit_revision(
            matrix_digest(matrix), delta, PARAMS
        )
        run_done(service, record)
        assert_bit_identical(
            service.result(record.job_id),
            scratch_clusters(tmp_path, apply_delta(matrix, delta)),
        )

    def test_chained_revisions(self, service, matrix, tmp_path):
        parent = service.submit(matrix, PARAMS)
        run_done(service, parent)
        first = AppendGenes(
            names=("gA",),
            values=bimodal_matrix(1, matrix.n_conditions, seed=31).values,
        )
        rev1, rec1 = service.submit_revision(
            matrix_digest(matrix), first, PARAMS
        )
        run_done(service, rec1)
        second = DropGenes(genes=(matrix.gene_names[0],))
        rev2, rec2 = service.submit_revision(
            rev1.child_digest, second, PARAMS
        )
        run_done(service, rec2)
        grandchild = apply_delta(apply_delta(matrix, first), second)
        assert_bit_identical(
            service.result(rec2.job_id),
            scratch_clusters(tmp_path, grandchild),
        )

    def test_unknown_parent_digest_raises(self, service):
        with pytest.raises(KeyError):
            service.submit_revision(
                "0" * 64,
                DropGenes(genes=("g1",)),
                PARAMS,
            )

    def test_misfit_delta_raises(self, service, matrix):
        service.submit(matrix, PARAMS)
        with pytest.raises(ValueError, match="unknown gene"):
            service.submit_revision(
                matrix_digest(matrix),
                DropGenes(genes=("not-a-gene",)),
                PARAMS,
            )

    def test_revision_without_parent_job_mines_from_scratch(
        self, service, matrix, tmp_path
    ):
        # The parent matrix is stored but never mined: there is no
        # parent job to stitch from, so the revision job just mines —
        # correctness never depends on reuse.
        service.submit(matrix, PARAMS)  # stores the matrix ...
        # ... but do NOT run it; submit the revision at different
        # parameters so no parent job record exists for them.
        other = PARAMS.with_overrides(epsilon=0.2)
        delta = AppendGenes(
            names=("flat",),
            values=np.full((1, matrix.n_conditions), 5.0),
        )
        revision, record = service.submit_revision(
            matrix_digest(matrix), delta, other
        )
        service.run_pending()
        done = service.status(record.job_id)
        assert done.state is JobState.DONE
        assert done.reused_shards is None

    def test_degraded_parent_missing_shards_are_mined(
        self, tmp_path, matrix
    ):
        # Lose one shard of the parent permanently; the revision must
        # reuse only surviving clean shards and re-mine the missing one.
        victim = 3
        plan = FaultPlan(
            [
                FaultSpec(
                    kind=FaultKind.CRASH_SHARD, shard=victim, times=10
                )
            ]
        )
        service = MiningService(
            tmp_path / "store", retry=NO_RETRY, fault_plan=plan
        )
        parent = service.submit(matrix, PARAMS)
        service.run_pending()
        degraded = service.status(parent.job_id)
        assert degraded.state is JobState.DEGRADED
        assert degraded.missing_shards == [victim]
        # Fresh service over the same store, no faults: the revision
        # job stitches surviving shards and mines the missing one.
        healthy = MiningService(tmp_path / "store")
        delta = AppendGenes(
            names=("flat",),
            values=np.full((1, matrix.n_conditions), 5.0),
        )
        revision, record = healthy.submit_revision(
            matrix_digest(matrix), delta, PARAMS
        )
        done = run_done(healthy, record)
        assert done.reused_shards is not None
        assert victim not in done.reused_shards
        assert_bit_identical(
            healthy.result(record.job_id),
            scratch_clusters(tmp_path, apply_delta(matrix, delta)),
        )

    def test_provenance_marks_parent_shards(self, service, matrix):
        parent = service.submit(matrix, PARAMS)
        run_done(service, parent)
        delta = AppendGenes(
            names=("flat",),
            values=np.full((1, matrix.n_conditions), 5.0),
        )
        __, record = service.submit_revision(
            matrix_digest(matrix), delta, PARAMS
        )
        done = run_done(service, record)
        assert all(
            info["node"] == "parent" and info["attempts"] == 0
            for info in done.shard_provenance.values()
        )

    def test_revision_metrics_families(self, service, matrix):
        parent = service.submit(matrix, PARAMS)
        run_done(service, parent)
        delta = AppendGenes(
            names=("flat",),
            values=np.full((1, matrix.n_conditions), 5.0),
        )
        __, record = service.submit_revision(
            matrix_digest(matrix), delta, PARAMS
        )
        run_done(service, record)
        text = service.metrics.render()
        assert (
            'repro_incremental_revisions_total{delta="append_genes"} 1'
            in text
        )
        assert (
            'repro_incremental_shards_total{source="reused"} '
            f"{matrix.n_conditions}" in text
        )
        assert 'repro_incremental_shards_total{source="mined"} 0' in text
        assert (
            'repro_incremental_kernel_builds_total{mode="delta"} 1'
            in text
        )

    def test_cold_revision_bootstraps_the_lineage(
        self, service, matrix, tmp_path
    ):
        # Worker pools build kernels in child processes, so a
        # pool-mined parent leaves no cached kernel to delta-update.
        # Simulate that by evicting the parent's kernel: the first
        # revision must fall back to a cold build but *store* it, so a
        # chained second revision delta-updates.
        parent = service.submit(matrix, PARAMS)
        run_done(service, parent)
        cache = service.cache
        parent_digest = matrix_digest(matrix)
        for key in list(cache.artifacts_for_digest(parent_digest)):
            if "kernel" in key:
                cache.drop_artifact(key)
        assert cache.get_kernel(parent_digest, PARAMS.gamma) is None

        first = AppendGenes(
            names=("gA",),
            values=bimodal_matrix(1, matrix.n_conditions, seed=41).values,
        )
        rev1, rec1 = service.submit_revision(
            parent_digest, first, PARAMS
        )
        done1 = run_done(service, rec1)
        assert done1.kernel_build == "cold"
        # ... but the cold build was stored for the lineage:
        assert (
            cache.get_kernel(rev1.child_digest, PARAMS.gamma) is not None
        )

        second = DropGenes(genes=(matrix.gene_names[1],))
        rev2, rec2 = service.submit_revision(
            rev1.child_digest, second, PARAMS
        )
        done2 = run_done(service, rec2)
        assert done2.kernel_build == "delta"
        assert_bit_identical(
            service.result(rec2.job_id),
            scratch_clusters(
                tmp_path,
                apply_delta(apply_delta(matrix, first), second),
            ),
        )


class TestSweeps:
    def test_one_kernel_build_per_gamma(self, service, matrix):
        batch = service.submit_sweep(
            matrix, PARAMS, gammas=[0.5, 0.7], epsilons=[0.05, 0.1]
        )
        service.run_pending()
        status = service.sweep_status(batch.sweep_id)
        assert status["finished"]
        assert status["counts"] == {"done": 4}
        text = service.metrics.render()
        # Gamma-major submission order: the first point of each gamma
        # builds the kernel cold, the remaining points hit the cache.
        assert (
            'repro_incremental_kernel_builds_total{mode="cold"} 2'
            in text
        )
        assert (
            'repro_incremental_kernel_builds_total{mode="cached"} 2'
            in text
        )
        assert "repro_incremental_sweeps_total 1" in text
        assert "repro_incremental_sweep_points_total 4" in text

    def test_points_are_ordinary_idempotent_jobs(self, service, matrix):
        record = service.submit(
            matrix, PARAMS.with_overrides(gamma=0.5, epsilon=0.05)
        )
        batch = service.submit_sweep(
            matrix, PARAMS, gammas=[0.5], epsilons=[0.05]
        )
        assert batch.points[0].job_id == record.job_id
        assert (
            service.status(record.job_id).sweep_id == batch.sweep_id
        )

    def test_sweep_results_envelope(self, service, matrix):
        batch = service.submit_sweep(
            matrix, PARAMS, gammas=[0.5], epsilons=[0.05, 0.1]
        )
        results = service.sweep_results(batch.sweep_id)
        assert all(p["result"] is None for p in results["points"])
        service.run_pending()
        results = service.sweep_results(batch.sweep_id)
        assert all(
            p["result"]["format"] == "reg-cluster/v1"
            for p in results["points"]
        )

    def test_unknown_sweep_raises(self, service):
        with pytest.raises(KeyError):
            service.sweep_status("sweep-" + "0" * 16)

    def test_sweep_under_fault_injection(self, tmp_path, matrix):
        # One shard crashes once per job; the retry policy absorbs it
        # and every sweep point still finishes done.
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.CRASH_SHARD, shard=2, times=2)]
        )
        service = MiningService(
            tmp_path / "store",
            retry=RetryPolicy(
                max_retries=2, backoff_base=0.0, jitter=0.0
            ),
            fault_plan=plan,
        )
        batch = service.submit_sweep(
            matrix, PARAMS, gammas=[0.5, 0.7], epsilons=[0.1]
        )
        service.run_pending()
        status = service.sweep_status(batch.sweep_id)
        assert status["finished"]
        assert status["counts"] == {"done": 2}


class TestCacheLineage:
    def test_parent_eviction_leaves_children_intact(
        self, service, matrix
    ):
        parent = service.submit(matrix, PARAMS)
        run_done(service, parent)
        delta = AppendGenes(
            names=("flat",),
            values=np.full((1, matrix.n_conditions), 5.0),
        )
        revision, record = service.submit_revision(
            matrix_digest(matrix), delta, PARAMS
        )
        run_done(service, record)
        cache = service.cache
        parent_digest = matrix_digest(matrix)
        children = cache.derived_from(parent_digest)
        assert children, "delta-built artifacts must register lineage"
        # Evict every parent artifact; the children must still load.
        for key in cache.artifacts_for_digest(parent_digest):
            cache.drop_artifact(key)
        assert cache.get_kernel(revision.child_digest, PARAMS.gamma) is not None


class TestIncrementalEndpoints:
    """The HTTP surface for revisions and sweeps (router-level)."""

    @pytest.fixture
    def router(self, service):
        from repro.service.router import ServiceRouter

        return ServiceRouter(service)

    def _post(self, router, path, payload):
        import json

        from repro.service.router import Request

        response = router.handle(
            Request("POST", path, body=json.dumps(payload).encode())
        )
        return response.status, json.loads(response.body)

    def _get(self, router, path):
        import json

        from repro.service.router import Request

        response = router.handle(Request("GET", path))
        return response.status, json.loads(response.body)

    def test_post_revision_envelope(self, router, service, matrix):
        parent = service.submit(matrix, PARAMS)
        run_done(service, parent)
        delta = AppendGenes(
            names=("flat",),
            values=np.full((1, matrix.n_conditions), 5.0),
        )
        status, body = self._post(
            router,
            f"/matrices/{matrix_digest(matrix)}/revisions",
            {
                "delta": delta_to_dict(delta),
                "parameters": {"min_genes": 2, "min_conditions": 2,
                               "gamma": 0.6, "epsilon": 0.1},
            },
        )
        assert status == 202
        assert set(body) == {"revision", "job"}
        assert body["revision"]["parent_digest"] == matrix_digest(matrix)
        assert body["job"]["matrix_digest"] == (
            body["revision"]["child_digest"]
        )

    def test_post_revision_unknown_digest_404(self, router):
        status, body = self._post(
            router,
            "/matrices/" + "ef" * 32 + "/revisions",
            {
                "delta": {"kind": "drop_genes", "genes": ["g0"]},
                "parameters": {"min_genes": 2, "min_conditions": 2,
                               "gamma": 0.6, "epsilon": 0.1},
            },
        )
        assert status == 404
        assert "error" in body

    def test_post_revision_bad_delta_400(self, router, service, matrix):
        service.submit(matrix, PARAMS)
        status, body = self._post(
            router,
            f"/matrices/{matrix_digest(matrix)}/revisions",
            {
                "delta": {"kind": "transpose"},
                "parameters": {"min_genes": 2, "min_conditions": 2,
                               "gamma": 0.6, "epsilon": 0.1},
            },
        )
        assert status == 400
        assert "error" in body

    def test_sweep_endpoints_round_trip(self, router, service, matrix):
        status, body = self._post(
            router,
            "/sweeps",
            {
                "matrix": {
                    "values": matrix.values.tolist(),
                    "gene_names": list(matrix.gene_names),
                    "condition_names": list(matrix.condition_names),
                },
                "parameters": {"min_genes": 2, "min_conditions": 2,
                               "gamma": 0.6, "epsilon": 0.1},
                "gammas": [0.5, 0.7],
                "epsilons": [0.1],
            },
        )
        assert status == 202
        sweep_id = body["sweep"]["sweep_id"]
        assert len(body["sweep"]["points"]) == 2

        status, listing = self._get(router, "/sweeps")
        assert status == 200
        assert sweep_id in [s["sweep_id"] for s in listing["sweeps"]]

        service.run_pending()
        status, summary = self._get(router, f"/sweeps/{sweep_id}")
        assert status == 200
        assert summary["finished"]

        status, results = self._get(
            router, f"/sweeps/{sweep_id}/results"
        )
        assert status == 200
        assert all(
            point["result"] is not None for point in results["points"]
        )

    def test_sweep_rejects_non_list_axes(self, router, matrix):
        status, body = self._post(
            router,
            "/sweeps",
            {
                "matrix": {"values": matrix.values.tolist()},
                "parameters": {"min_genes": 2, "min_conditions": 2,
                               "gamma": 0.6, "epsilon": 0.1},
                "gammas": 0.5,
                "epsilons": [0.1],
            },
        )
        assert status == 400

    def test_unknown_sweep_404(self, router):
        status, body = self._get(router, "/sweeps/sweep-" + "0" * 16)
        assert status == 404


class TestClientSurface:
    """ServiceClient request shaping for the new endpoints (no server)."""

    def test_submit_revision_builds_expected_request(self, matrix):
        from repro.service.http import ServiceClient

        calls = {}

        class Probe(ServiceClient):
            def _request(self, method, path, payload=None):
                calls["method"] = method
                calls["path"] = path
                calls["payload"] = payload
                return {"revision": {"r": 1}, "job": {"j": 1}}

        client = Probe("http://invalid.example")
        delta = {"kind": "drop_genes", "genes": ["g0"]}
        envelope = client.submit_revision(
            "ab" * 32, delta, {"min_genes": 2}
        )
        assert calls["method"] == "POST"
        assert calls["path"] == "/matrices/" + "ab" * 32 + "/revisions"
        assert calls["payload"]["delta"] == delta
        assert envelope == {"revision": {"r": 1}, "job": {"j": 1}}

    def test_sweep_client_methods(self):
        from repro.service.http import ServiceClient

        calls = []

        class Probe(ServiceClient):
            def _request(self, method, path, payload=None):
                calls.append((method, path))
                return {
                    "sweep": {"sweep_id": "sweep-" + "1" * 16},
                    "sweeps": [],
                }

        client = Probe("http://invalid.example")
        client.submit_sweep(
            bimodal_matrix(2, 3, seed=0),
            {"min_genes": 2},
            gammas=[0.5],
            epsilons=[0.1],
        )
        client.sweep_status("sweep-" + "1" * 16)
        client.sweep_results("sweep-" + "1" * 16)
        client.list_sweeps()
        assert calls == [
            ("POST", "/sweeps"),
            ("GET", "/sweeps/sweep-" + "1" * 16),
            ("GET", "/sweeps/sweep-" + "1" * 16 + "/results"),
            ("GET", "/sweeps"),
        ]
