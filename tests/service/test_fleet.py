"""Tests for the distributed shard-mining fleet (repro.service.fleet).

Covers the coordinator's lease lifecycle (grant / heartbeat / expiry /
reclaim / idempotent rejection), affinity routing, the wire form of
shard results, the provenance reporting satellite, and — the headline
guarantee — that a job mined by a coordinator plus worker nodes is
bit-identical to single-process mining.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.cluster import RegCluster
from repro.core.miner import mine_reg_clusters
from repro.core.params import MiningParameters
from repro.core.serialize import result_to_dict
from repro.matrix.expression import ExpressionMatrix
from repro.matrix.summary import matrix_digest
from repro.service.cache import kernel_cache_key
from repro.service.fleet import (
    FleetNode,
    FleetState,
    shard_from_wire,
    shard_to_wire,
)
from repro.service.http import ServiceClient, serve
from repro.service.jobs import JobState
from repro.service.resilience import RetryPolicy
from repro.service.service import MiningService


def _shard(start, n_clusters=1):
    """A fabricated, deterministic shard result."""
    clusters = [
        RegCluster(chain=(start, 100 + i), p_members=(0, 1, 2))
        for i in range(n_clusters)
    ]
    return (start, clusters, {"nodes_expanded": 1.0, "max_depth": 1.0})


def _complete_payload(lease, start, shard=None, **extra):
    payload = shard_to_wire(shard if shard is not None else _shard(start))
    payload.update({
        "node_id": extra.pop("node_id", "node-a"),
        "lease_id": lease["lease_id"],
        "job_id": lease["job_id"],
        "shard": start,
        "status": "ok",
    })
    payload.update(extra)
    return payload


@pytest.fixture
def small_matrix():
    return ExpressionMatrix(
        [[float(g * c + g) for c in range(4)] for g in range(3)]
    )


@pytest.fixture
def small_params():
    return MiningParameters(
        min_genes=3, min_conditions=2, gamma=0.5, epsilon=10.0
    )


def _start_job(state, matrix, params, **kwargs):
    """Run state.run_job on a thread; returns (thread, result box)."""
    box = {}

    def target():
        try:
            box["outcome"], box["provenance"] = state.run_job(
                "job-0000000000000000",
                matrix,
                params,
                matrix_digest=matrix_digest(matrix),
                poll_interval=0.01,
                **kwargs,
            )
        # Harness thread: every failure (incl. cancellation) must land
        # in the box for the test to assert on.
        except BaseException as error:  # reglint: disable=RL103
            box["error"] = error

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread, box


def _lease_or_wait(state, node_id, deadline_s=5.0, **kwargs):
    """Poll for a lease until the queue has one (run_job just started)."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        lease = state.lease(node_id, **kwargs)
        if lease is not None:
            return lease
        time.sleep(0.01)
    raise AssertionError(f"no lease granted to {node_id} in {deadline_s}s")


def _finish(thread, box, timeout=10.0):
    thread.join(timeout=timeout)
    assert not thread.is_alive(), "run_job did not finish"
    if "error" in box:
        raise box["error"]
    return box["outcome"], box["provenance"]


class TestShardWire:
    def test_round_trip_is_exact(self):
        shard = _shard(3, n_clusters=2)
        assert shard_from_wire(shard_to_wire(shard)) == shard

    def test_members_survive_as_equal_clusters(self):
        shard = (
            2,
            [RegCluster(chain=(2, 5), p_members=(1, 0, 3),
                        n_members=(7,))],
            {"nodes_expanded": 4.0, "time_search_s": 0.25},
        )
        start, clusters, stats = shard_from_wire(shard_to_wire(shard))
        assert start == 2
        assert clusters == [
            RegCluster(chain=(2, 5), p_members=(0, 1, 3), n_members=(7,))
        ]
        assert stats == {"nodes_expanded": 4.0, "time_search_s": 0.25}

    @pytest.mark.parametrize("payload", [
        {},
        {"start": 0},
        {"start": 0, "clusters": [{"chain": "junk"}], "stats": {}},
        {"start": "x", "clusters": [], "stats": {}},
    ])
    def test_malformed_payload_raises(self, payload):
        with pytest.raises(ValueError):
            shard_from_wire(payload)


class TestLeaseLifecycle:
    def test_shards_lease_once_and_complete(
        self, small_matrix, small_params
    ):
        state = FleetState(lease_ttl=30.0, local_mining=False)
        thread, box = _start_job(state, small_matrix, small_params)
        seen = set()
        while len(seen) < small_matrix.n_conditions:
            lease = _lease_or_wait(state, "node-a", max_shards=2)
            for start in lease["shards"]:
                # Double-lease prevention: a leased shard never shows
                # up in another grant while its lease is alive.
                assert start not in seen
                seen.add(start)
                answer = state.complete(_complete_payload(lease, start))
                assert answer == {"accepted": True}
        outcome, provenance = _finish(thread, box)
        assert not outcome.degraded
        assert sorted(seen) == list(range(small_matrix.n_conditions))
        assert all(
            provenance[str(s)] == {"node": "node-a", "attempts": 1}
            for s in seen
        )

    def test_two_nodes_never_share_a_shard(
        self, small_matrix, small_params
    ):
        state = FleetState(
            lease_ttl=30.0, local_mining=False, max_lease_shards=1
        )
        thread, box = _start_job(state, small_matrix, small_params)
        grants = {"node-a": [], "node-b": []}
        leases = []
        for node_id in ("node-a", "node-b", "node-a", "node-b"):
            lease = _lease_or_wait(state, node_id)
            grants[node_id].extend(lease["shards"])
            leases.append((node_id, lease))
        assert not set(grants["node-a"]) & set(grants["node-b"])
        for node_id, lease in leases:
            for start in lease["shards"]:
                state.complete(
                    _complete_payload(lease, start, node_id=node_id)
                )
        outcome, provenance = _finish(thread, box)
        assert not outcome.degraded
        miners = {info["node"] for info in provenance.values()}
        assert miners == {"node-a", "node-b"}

    def test_ttl_expiry_reclaims_and_rejects_late_complete(
        self, small_matrix, small_params
    ):
        state = FleetState(
            lease_ttl=0.1,
            local_mining=False,
            retry=RetryPolicy(max_retries=2, backoff_base=0.01,
                              jitter=0.0, backoff_max=0.02),
            max_lease_shards=1,
        )
        thread, box = _start_job(state, small_matrix, small_params)
        stale = _lease_or_wait(state, "node-dead")
        start = stale["shards"][0]
        # No heartbeat: the lease expires and run_job's sweep reclaims
        # the shard, charging one attempt against the retry budget.
        deadline = time.monotonic() + 5.0
        fresh = None
        while fresh is None and time.monotonic() < deadline:
            lease = state.lease("node-live")
            if lease is not None and start in lease["shards"]:
                fresh = lease
            elif lease is not None:
                for other in lease["shards"]:
                    state.complete(_complete_payload(
                        lease, other, node_id="node-live"
                    ))
            else:
                time.sleep(0.01)
        assert fresh is not None, "reclaimed shard was never re-leased"
        # Reclaim-then-retry counts against the shard's budget: the
        # re-grant reports the failed attempt.
        assert fresh["attempts"][str(start)] == 1
        # The dead node's late completion is rejected idempotently.
        late = state.complete(_complete_payload(
            stale, start, node_id="node-dead"
        ))
        assert late == {"accepted": False, "reason": "lease-expired"}
        accepted = state.complete(_complete_payload(
            fresh, start, node_id="node-live"
        ))
        assert accepted == {"accepted": True}
        # And completing the same shard again is a duplicate.
        again = state.complete(_complete_payload(
            fresh, start, node_id="node-live"
        ))
        assert again == {"accepted": False, "reason": "duplicate"}
        while True:
            lease = state.lease("node-live")
            if lease is None:
                if not thread.is_alive():
                    break
                time.sleep(0.01)
                continue
            for other in lease["shards"]:
                state.complete(_complete_payload(
                    lease, other, node_id="node-live"
                ))
        outcome, provenance = _finish(thread, box)
        assert not outcome.degraded
        assert provenance[str(start)] == {
            "node": "node-live", "attempts": 2,
        }
        snap = state.metrics_snapshot()
        assert snap["shards_reclaimed"] >= 1
        assert snap["completions_rejected"]["lease-expired"] >= 1
        assert snap["completions_rejected"]["duplicate"] >= 1

    def test_reclaims_exhaust_the_retry_budget_into_degradation(
        self, small_matrix, small_params
    ):
        state = FleetState(
            lease_ttl=0.05,
            local_mining=False,
            retry=RetryPolicy(max_retries=1, backoff_base=0.01,
                              jitter=0.0, backoff_max=0.02),
        )
        thread, box = _start_job(state, small_matrix, small_params)
        victim = None
        # Keep leasing without ever completing the victim shard; every
        # expiry burns one attempt until the budget (1 retry) is gone.
        deadline = time.monotonic() + 10.0
        while thread.is_alive() and time.monotonic() < deadline:
            lease = state.lease("node-flaky", max_shards=2)
            if lease is None:
                time.sleep(0.01)
                continue
            if victim is None:
                victim = lease["shards"][0]
            for start in lease["shards"]:
                if start != victim:
                    state.complete(_complete_payload(
                        lease, start, node_id="node-flaky"
                    ))
        outcome, provenance = _finish(thread, box)
        assert outcome.degraded
        assert outcome.missing_shards == [victim]
        assert outcome.failed_attempts[victim] == 2  # 1 try + 1 retry
        assert "expired" in outcome.shard_errors[victim]
        assert provenance[str(victim)] == {"node": None, "attempts": 2}

    def test_heartbeat_keeps_a_slow_lease_alive(
        self, small_matrix, small_params
    ):
        state = FleetState(
            lease_ttl=0.2, local_mining=False, max_lease_shards=1
        )
        thread, box = _start_job(state, small_matrix, small_params)
        lease = _lease_or_wait(state, "node-slow")
        start = lease["shards"][0]
        # Hold the shard well past the TTL, heartbeating all along.
        until = time.monotonic() + 0.6
        while time.monotonic() < until:
            answer = state.heartbeat("node-slow")
            assert answer["ok"] is True
            time.sleep(0.05)
        accepted = state.complete(_complete_payload(
            lease, start, node_id="node-slow"
        ))
        assert accepted == {"accepted": True}
        while thread.is_alive():
            other = state.lease("node-slow")
            if other is None:
                time.sleep(0.01)
                continue
            for s in other["shards"]:
                state.complete(_complete_payload(
                    other, s, node_id="node-slow"
                ))
        outcome, __ = _finish(thread, box)
        assert not outcome.degraded
        assert outcome.failed_attempts == {}

    def test_reported_node_failure_counts_against_the_budget(
        self, small_matrix, small_params
    ):
        state = FleetState(
            lease_ttl=30.0,
            local_mining=False,
            retry=RetryPolicy(max_retries=1, backoff_base=0.01,
                              jitter=0.0, backoff_max=0.02),
            max_lease_shards=1,
        )
        thread, box = _start_job(state, small_matrix, small_params)
        lease = _lease_or_wait(state, "node-a")
        start = lease["shards"][0]
        answer = state.complete({
            "node_id": "node-a",
            "lease_id": lease["lease_id"],
            "job_id": lease["job_id"],
            "shard": start,
            "status": "failed",
            "error": "boom",
        })
        assert answer["accepted"] is True
        assert answer["will_retry"] is True
        while thread.is_alive():
            lease = state.lease("node-a", max_shards=1)
            if lease is None:
                time.sleep(0.01)
                continue
            for s in lease["shards"]:
                state.complete(_complete_payload(lease, s))
        outcome, provenance = _finish(thread, box)
        assert not outcome.degraded
        assert outcome.failed_attempts[start] == 1
        assert provenance[str(start)]["attempts"] == 2

    def test_unknown_job_and_malformed_completions(
        self, small_matrix, small_params
    ):
        state = FleetState(lease_ttl=30.0, local_mining=False)
        answer = state.complete({
            "node_id": "n", "lease_id": "x", "job_id": "job-ffffffffffffffff",
            "shard": 0, "status": "failed", "error": "late",
        })
        assert answer == {"accepted": False, "reason": "unknown-job"}
        with pytest.raises(ValueError):
            state.complete({"job_id": "job-0"})  # missing fields


class TestAffinity:
    def test_leases_prefer_nodes_holding_the_kernel(
        self, small_matrix, small_params
    ):
        state = FleetState(lease_ttl=30.0, local_mining=False)
        thread, box = _start_job(state, small_matrix, small_params)
        key = kernel_cache_key(
            matrix_digest(small_matrix), small_params.gamma
        )
        lease = _lease_or_wait(state, "node-warm", kernels=[key])
        assert lease["affinity_hit"] is True
        cold = state.lease("node-cold")
        if cold is not None:
            assert cold["affinity_hit"] is False
        snap = state.metrics_snapshot()
        assert snap["affinity_hits"] >= 1
        for granted in [lease] + ([cold] if cold else []):
            for start in granted["shards"]:
                state.complete(_complete_payload(
                    granted, start,
                    node_id="node-warm",
                    lease_id=granted["lease_id"],
                ))
        while thread.is_alive():
            more = state.lease("node-warm", kernels=[key])
            if more is None:
                time.sleep(0.01)
                continue
            for start in more["shards"]:
                state.complete(_complete_payload(
                    more, start, node_id="node-warm"
                ))
        _finish(thread, box)


class TestFleetService:
    def test_local_only_fleet_is_bit_identical(
        self, tmp_path, running_example, paper_params
    ):
        plain = MiningService(tmp_path / "plain")
        fleet = MiningService(tmp_path / "fleet", fleet=True)
        expected = result_to_dict(
            mine_reg_clusters(
                running_example,
                min_genes=paper_params.min_genes,
                min_conditions=paper_params.min_conditions,
                gamma=paper_params.gamma,
                epsilon=paper_params.epsilon,
            ),
            running_example,
        )
        for service in (plain, fleet):
            record = service.submit(running_example, paper_params)
            service.run_pending()
            assert service.status(record.job_id).state is JobState.DONE
            assert service.result(record.job_id) == expected

    def test_provenance_reported_on_both_paths(
        self, tmp_path, running_example, paper_params
    ):
        for name, kwargs in (
            ("plain", {}),
            ("fleet", {"fleet": True}),
        ):
            service = MiningService(tmp_path / name, **kwargs)
            record = service.submit(running_example, paper_params)
            service.run_pending()
            record = service.status(record.job_id)
            provenance = record.shard_provenance
            assert provenance is not None
            assert set(provenance) == {
                str(s) for s in range(running_example.n_conditions)
            }
            assert all(
                info == {"node": "local", "attempts": 1}
                for info in provenance.values()
            )

    def test_distributed_job_is_bit_identical_and_names_nodes(
        self, tmp_path, running_example, paper_params
    ):
        service = MiningService(
            tmp_path / "store",
            fleet=True,
            fleet_local=False,
            lease_ttl=10.0,
            trace_dir=tmp_path / "traces",
        )
        server = serve(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        service.start()
        host, port = server.server_address[0], server.server_address[1]
        url = f"http://{host}:{port}"
        stop = threading.Event()
        nodes = [
            FleetNode(
                url,
                node_id=f"node-{i}",
                cache_dir=tmp_path / f"node-{i}",
                poll_interval=0.02,
            )
            for i in range(2)
        ]
        node_threads = [
            threading.Thread(
                target=node.run, kwargs={"stop": stop}, daemon=True
            )
            for node in nodes
        ]
        try:
            record = service.submit(running_example, paper_params)
            for node_thread in node_threads:
                node_thread.start()
            client = ServiceClient(url)
            final = client.wait(record.job_id, timeout=60.0)
            assert final["state"] == "done"
            expected = result_to_dict(
                mine_reg_clusters(
                    running_example,
                    min_genes=paper_params.min_genes,
                    min_conditions=paper_params.min_conditions,
                    gamma=paper_params.gamma,
                    epsilon=paper_params.epsilon,
                ),
                running_example,
            )
            assert client.result(record.job_id) == expected
            provenance = final["shard_provenance"]
            miners = {info["node"] for info in provenance.values()}
            assert miners <= {"node-0", "node-1"}
            assert "local" not in miners
            # Remote shard spans stitched under the job's root trace.
            from repro.obs.trace import load_spans

            spans = load_spans(
                tmp_path / "traces" / f"{record.job_id}.trace.jsonl"
            )
            assert len({span["trace_id"] for span in spans}) == 1
            shard_spans = [s for s in spans if s["name"] == "shard"]
            assert len(shard_spans) == running_example.n_conditions
            assert {
                s["attributes"].get("node") for s in shard_spans
            } <= {"node-0", "node-1"}
            metrics = client.metrics()
            assert "repro_fleet_leases_granted_total" in metrics
            assert "repro_fleet_nodes_active" in metrics
        finally:
            stop.set()
            for node_thread in node_threads:
                node_thread.join(timeout=5.0)
            service.stop()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)

    def test_fleet_endpoints_404_when_disabled(self, tmp_path):
        from repro.service.http import ServiceError

        service = MiningService(tmp_path / "store")
        server = serve(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[0], server.server_address[1]
        client = ServiceClient(
            f"http://{host}:{port}", connect_retries=0
        )
        try:
            with pytest.raises(ServiceError) as err:
                client.fleet_status()
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                client.fleet_lease("node-a")
            assert err.value.status == 404
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)

    def test_artifact_endpoints_serve_by_digest(
        self, tmp_path, running_example, paper_params
    ):
        service = MiningService(tmp_path / "store", fleet=True)
        server = serve(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[0], server.server_address[1]
        client = ServiceClient(f"http://{host}:{port}")
        try:
            record = service.submit(running_example, paper_params)
            raw = client.fetch_matrix(record.matrix_digest)
            assert raw == service.matrix_artifact_bytes(
                record.matrix_digest
            )
            # Kernel not built yet: 404 maps to None.
            assert client.fetch_kernel(
                record.matrix_digest, paper_params.gamma
            ) is None
            service.run_pending()
            fetched = client.fetch_kernel(
                record.matrix_digest, paper_params.gamma
            )
            assert fetched is not None
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
