"""Regression tests for concurrency defects surfaced by reglint RL30x.

Each test pins one fix:

* ``ArtifactCache`` stats counters were unlocked read-modify-write
  (``self.stats.X += 1``) — concurrent handlers lost updates (RL301).
* ``MiningService.submit`` saved the matrix ``.npz`` while holding the
  service lock, stalling every handler thread behind disk I/O (RL303).
* ``MiningService._result_fallback`` was mutated from the mining thread
  and read from handler threads without the lock (RL301).
"""

from __future__ import annotations

import threading

import pytest

from repro.service.cache import ArtifactCache
from repro.service.jobs import JobState
from repro.service.service import MiningService


@pytest.fixture
def service(tmp_path) -> MiningService:
    return MiningService(tmp_path / "store")


class TestCacheStatsRace:
    def test_concurrent_misses_are_all_counted(self, tmp_path):
        """Hammer one counter from many threads; the total must be exact.

        Before the fix, ``self.stats.result_misses += 1`` was a naked
        read-modify-write: two threads could read the same value and
        one increment would vanish.  With ``_bump`` taking the cache
        lock, the count is exact regardless of interleaving.
        """
        cache = ArtifactCache(tmp_path / "cache")
        threads_n, lookups_n = 8, 200
        barrier = threading.Barrier(threads_n)

        def hammer():
            barrier.wait()
            for i in range(lookups_n):
                cache.get_result(f"job-{i:04d}")  # always a miss

        workers = [threading.Thread(target=hammer) for _ in range(threads_n)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert cache.stats.result_misses == threads_n * lookups_n

    def test_bump_updates_the_named_counter_only(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cache._bump("index_hits")
        cache._bump("index_hits")
        stats = cache.stats.as_dict()
        assert stats["index_hits"] == 2
        assert all(v == 0 for k, v in stats.items() if k != "index_hits")


class TestSubmitHoldsLockBrieflyDuringIO:
    def test_matrix_write_runs_outside_service_lock(
        self, service, running_example, paper_params
    ):
        """The slow ``.npz`` write must not happen under ``_lock``.

        A probe thread tries to take the service lock while
        ``_save_matrix`` is executing; before the hoist it would time
        out (submit held the lock across the write).
        """
        lock_free_during_save = []
        original = MiningService._save_matrix

        def probed(self_, matrix, digest):
            acquired = service._lock.acquire(timeout=2.0)
            lock_free_during_save.append(acquired)
            if acquired:
                service._lock.release()
            return original(self_, matrix, digest)

        MiningService._save_matrix = probed
        try:
            record = service.submit(running_example, paper_params)
        finally:
            MiningService._save_matrix = original
        assert record.state is JobState.SUBMITTED
        assert lock_free_during_save == [True]

    def test_concurrent_identical_submissions_yield_one_job(
        self, service, running_example, paper_params
    ):
        """The hoist relies on the content-addressed matrix store being
        idempotent — racing identical submissions must converge on a
        single job."""
        threads_n = 6
        barrier = threading.Barrier(threads_n)
        records = []

        def submit():
            barrier.wait()
            records.append(service.submit(running_example, paper_params))

        workers = [threading.Thread(target=submit) for _ in range(threads_n)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert len(records) == threads_n
        assert len({r.job_id for r in records}) == 1
        assert service.run_pending() == 1  # one queued mining job


class TestResultFallbackLockDiscipline:
    def test_result_readable_while_fallback_mutated(
        self, service, running_example, paper_params
    ):
        """Smoke the read path against concurrent fallback mutation.

        The fallback dict is written by the mining thread and read by
        handler threads; both sides now hold the service lock, so a
        reader can never observe a dict mid-resize.
        """
        record = service.submit(running_example, paper_params)
        service.run_pending()
        stop = threading.Event()
        errors = []

        def churn():
            while not stop.is_set():
                with service._lock:
                    service._result_fallback["ghost"] = {"clusters": []}
                with service._lock:
                    service._result_fallback.pop("ghost", None)

        def read():
            try:
                for _ in range(200):
                    service.result(record.job_id)
            except Exception as exc:  # reglint: disable=RL103
                errors.append(exc)  # any escape fails the assertion below

        writer = threading.Thread(target=churn)
        reader = threading.Thread(target=read)
        writer.start()
        reader.start()
        reader.join()
        stop.set()
        writer.join()
        assert errors == []
