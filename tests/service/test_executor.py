"""Shard-merge equivalence tests for the sharded executor.

The load-bearing guarantee (see the executor module docstring): for any
worker count, ``mine_sharded`` output is bit-identical to
single-process :func:`repro.core.miner.mine_reg_clusters`.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.miner import MiningCancelled, RegClusterMiner, mine_reg_clusters
from repro.core.params import MiningParameters
from repro.datasets.synthetic import make_synthetic_dataset
from repro.service.executor import merge_shard_results, mine_sharded


@pytest.fixture(scope="module")
def synthetic():
    return make_synthetic_dataset(
        n_genes=60, n_conditions=8, n_clusters=2, seed=7
    ).matrix


@pytest.fixture(scope="module")
def synthetic_params():
    return MiningParameters(
        min_genes=3, min_conditions=4, gamma=0.2, epsilon=0.5
    )


def assert_results_identical(sharded, reference):
    assert sharded.clusters == reference.clusters
    assert sharded.parameters == reference.parameters
    assert sharded.statistics.as_dict() == reference.statistics.as_dict()


class TestShardMergeEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_running_example(self, running_example, paper_params, n_workers):
        reference = mine_reg_clusters(
            running_example,
            min_genes=paper_params.min_genes,
            min_conditions=paper_params.min_conditions,
            gamma=paper_params.gamma,
            epsilon=paper_params.epsilon,
        )
        sharded = mine_sharded(
            running_example, paper_params, n_workers=n_workers
        )
        assert_results_identical(sharded, reference)

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_synthetic(self, synthetic, synthetic_params, n_workers):
        reference = RegClusterMiner(synthetic, synthetic_params).mine()
        sharded = mine_sharded(synthetic, synthetic_params, n_workers=n_workers)
        assert_results_identical(sharded, reference)
        assert reference.clusters  # the comparison is not vacuous

    def test_max_clusters_cap_matches_clusters(self, synthetic,
                                               synthetic_params):
        # Permissive setting (280 clusters uncapped) so the cap binds.
        capped = synthetic_params.with_overrides(
            min_conditions=3, epsilon=1.0, max_clusters=3
        )
        reference = RegClusterMiner(synthetic, capped).mine()
        sharded = mine_sharded(synthetic, capped, n_workers=2)
        # Clusters are identical; statistics are an upper bound because
        # shards run to completion while the capped single-process
        # search stops early (documented in the executor docstring).
        assert sharded.clusters == reference.clusters
        assert len(sharded.clusters) == 3
        assert (
            sharded.statistics.nodes_expanded
            >= reference.statistics.nodes_expanded
        )

    def test_workers_beyond_conditions_clamped(self, running_example,
                                               paper_params):
        sharded = mine_sharded(running_example, paper_params, n_workers=64)
        reference = RegClusterMiner(running_example, paper_params).mine()
        assert_results_identical(sharded, reference)

    def test_invalid_worker_count(self, running_example, paper_params):
        with pytest.raises(ValueError, match="n_workers"):
            mine_sharded(running_example, paper_params, n_workers=0)


class TestManualSharding:
    def test_start_conditions_partition_the_search(self, running_example,
                                                   paper_params):
        reference = RegClusterMiner(running_example, paper_params).mine()
        shards = []
        for start in range(running_example.n_conditions):
            result = RegClusterMiner(running_example, paper_params).mine(
                start_conditions=[start]
            )
            shards.append((start, result.clusters,
                           result.statistics.as_dict()))
        merged = merge_shard_results(shards, paper_params)
        assert_results_identical(merged, reference)

    def test_merge_is_order_insensitive(self, running_example, paper_params):
        shards = []
        for start in range(running_example.n_conditions):
            result = RegClusterMiner(running_example, paper_params).mine(
                start_conditions=[start]
            )
            shards.append((start, result.clusters,
                           result.statistics.as_dict()))
        forward = merge_shard_results(shards, paper_params)
        backward = merge_shard_results(list(reversed(shards)), paper_params)
        assert forward.clusters == backward.clusters
        assert (
            forward.statistics.as_dict() == backward.statistics.as_dict()
        )


class TestHooksThroughTheExecutor:
    def test_progress_reported_in_pool_mode(self, synthetic, synthetic_params):
        events = []
        mine_sharded(
            synthetic,
            synthetic_params,
            n_workers=2,
            progress_callback=lambda event, nodes: events.append(
                (event, nodes)
            ),
        )
        expanded = [n for e, n in events if e == "expanded"]
        assert expanded, "pool mode must report per-shard progress"
        assert expanded == sorted(expanded)
        reference = RegClusterMiner(synthetic, synthetic_params).mine()
        assert expanded[-1] == reference.statistics.nodes_expanded

    def test_cancellation_in_pool_mode(self, synthetic, synthetic_params):
        flag = threading.Event()
        flag.set()
        with pytest.raises(MiningCancelled):
            mine_sharded(
                synthetic,
                synthetic_params,
                n_workers=2,
                should_stop=flag.is_set,
            )


class TestFailurePaths:
    def test_strict_mine_sharded_raises_shard_failure(self, running_example,
                                                      paper_params):
        from repro.service.executor import ShardFailure
        from repro.service.resilience import (
            FaultKind,
            FaultPlan,
            FaultSpec,
            RetryPolicy,
        )

        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.CRASH_SHARD, shard=3, times=10)]
        )
        with pytest.raises(ShardFailure) as info:
            mine_sharded(
                running_example,
                paper_params,
                retry=RetryPolicy(max_retries=0, backoff_base=0.0),
                fault_plan=plan,
            )
        assert info.value.missing_shards == [3]
        assert "crash-shard" in info.value.shard_errors[3]

    def test_cancellation_carries_partial_clusters(self, synthetic,
                                                   synthetic_params):
        # Cancel once the first cluster-bearing shard has finished: the
        # exception must carry the clusters already merged, so callers
        # (the service) can persist progress diagnostics.
        from repro.service.executor import mine_sharded_outcome

        seen = []

        def stop_after_first_cluster() -> bool:
            return bool(seen)

        with pytest.raises(MiningCancelled) as info:
            mine_sharded_outcome(
                synthetic,
                synthetic_params,
                on_shard_complete=lambda shard: seen.extend(shard[1]),
                should_stop=stop_after_first_cluster,
            )
        assert info.value.partial_clusters == seen
        assert seen  # the synthetic dataset yields clusters early

    def test_cancellation_in_pool_mode_carries_partials(self, synthetic,
                                                        synthetic_params):
        from repro.service.executor import mine_sharded_outcome

        seen = []

        with pytest.raises(MiningCancelled) as info:
            mine_sharded_outcome(
                synthetic,
                synthetic_params,
                n_workers=2,
                on_shard_complete=lambda shard: seen.extend(shard[1]),
                should_stop=lambda: bool(seen),
            )
        assert set(info.value.partial_clusters) >= set(seen)

    def test_fast_path_still_used_without_resilience_options(
        self, running_example, paper_params
    ):
        # n_workers=1 with no retry/faults/timeout takes the classic
        # single-mine fast path: statistics match even under a binding
        # max_clusters cap (the capped search stops early).
        capped = paper_params.with_overrides(max_clusters=1)
        reference = RegClusterMiner(running_example, capped).mine()
        sharded = mine_sharded(running_example, capped, n_workers=1)
        assert_results_identical(sharded, reference)
