"""Tests of the selector front door: admission, fairness, long-poll.

The wire-compatibility surface (old routes against the new server) is
covered by ``test_http.py`` running unchanged; this file tests what is
*new*: the weighted-fair queue, token buckets, per-tenant quotas,
queue/connection shedding, long-poll semantics, result pagination, and
the typed :class:`ServiceBusy` client error.
"""

from __future__ import annotations

import queue as queue_module
import socket
import threading
import time

import pytest

from repro.service import frontdoor
from repro.service.frontdoor import TokenBucket
from repro.service.http import (
    ServiceBusy,
    ServiceClient,
    ServiceError,
    serve,
)
from repro.service.jobs import parameters_to_dict
from repro.service.scheduling import FairJobQueue, normalize_priority
from repro.service.service import MiningService


@pytest.fixture
def stack(tmp_path):
    """A running service + front door + client on an ephemeral port."""
    service = MiningService(tmp_path / "store")
    server = serve(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    service.start()
    host, port = server.server_address[0], server.server_address[1]
    client = ServiceClient(f"http://{host}:{port}")
    yield service, client
    service.stop()
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture
def idle_stack(tmp_path, request):
    """Front door over a service that is *not* started.

    Submitted jobs stay ``submitted`` forever, which makes long-poll
    and quota-holding behaviour deterministic.  Parametrize server
    options via ``request.param`` (a dict of ``serve`` kwargs).
    """
    options = getattr(request, "param", {})
    service = MiningService(tmp_path / "store")
    server = serve(service, **options)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[0], server.server_address[1]
    client = ServiceClient(f"http://{host}:{port}")
    yield service, server, client
    service.stop()
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestNormalizePriority:
    def test_default_and_case(self):
        assert normalize_priority(None) == "normal"
        assert normalize_priority("HIGH") == "high"
        assert normalize_priority(" low ") == "low"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown priority"):
            normalize_priority("urgent")


class TestFairJobQueue:
    def test_single_class_is_fifo(self):
        q = FairJobQueue()
        for item in ("a", "b", "c"):
            q.put(item, "low")
        assert [q.get_nowait() for _ in range(3)] == ["a", "b", "c"]

    def test_weighted_shares_under_contention(self):
        # 4:2:1 — in one full schedule rotation every class is served.
        q = FairJobQueue()
        for index in range(8):
            q.put(f"h{index}", "high")
            q.put(f"n{index}", "normal")
            q.put(f"l{index}", "low")
        first_seven = [q.get_nowait() for _ in range(7)]
        highs = sum(1 for item in first_seven if item.startswith("h"))
        normals = sum(1 for item in first_seven if item.startswith("n"))
        lows = sum(1 for item in first_seven if item.startswith("l"))
        assert (highs, normals, lows) == (4, 2, 1)

    def test_low_never_starved(self):
        q = FairJobQueue()
        for index in range(100):
            q.put(f"h{index}", "high")
        q.put("the-low-one", "low")
        drained = [q.get_nowait() for _ in range(10)]
        assert "the-low-one" in drained

    def test_wake_token_served_first(self):
        q = FairJobQueue()
        q.put("job", "high")
        q.put(None)
        assert q.get_nowait() is None
        assert q.get_nowait() == "job"

    def test_get_timeout_raises_empty(self):
        q = FairJobQueue()
        started = time.monotonic()
        with pytest.raises(queue_module.Empty):
            q.get(timeout=0.05)
        assert time.monotonic() - started < 2.0

    def test_depths_and_qsize(self):
        q = FairJobQueue()
        q.put("a", "high")
        q.put("b", "low")
        q.put(None)
        assert q.qsize() == 2
        assert q.depths() == {"high": 1, "normal": 0, "low": 1}

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError, match="unknown priority class"):
            FairJobQueue({"urgent": 1})
        with pytest.raises(ValueError, match="positive weight"):
            FairJobQueue({"high": 0, "normal": 0, "low": 0})


class TestTokenBucket:
    def test_burst_then_refusal(self):
        bucket = TokenBucket(rate=100.0, burst=3.0)
        assert [bucket.try_take() for _ in range(3)] == [True] * 3
        # Immediately after draining the burst the next take fails
        # (rate 100/s cannot mint a token in nanoseconds) ...
        assert bucket.retry_after() >= 0.0

    def test_refill_over_time(self):
        bucket = TokenBucket(rate=50.0, burst=1.0)
        assert bucket.try_take()
        deadline = time.monotonic() + 2.0
        while not bucket.try_take():
            assert time.monotonic() < deadline, "bucket never refilled"
            time.sleep(0.005)

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)


class TestLongPoll:
    def test_returns_early_on_state_change(
        self, stack, running_example, paper_params
    ):
        _, client = stack
        record = client.submit_matrix(
            running_example, parameters_to_dict(paper_params)
        )
        deadline = time.monotonic() + 30.0
        state = record["state"]
        # Each long-poll answers on the next transition; the job walks
        # submitted -> running -> done long before the 25s of requested
        # wait would elapse.
        while state not in ("done", "failed") and time.monotonic() < deadline:
            updated = client.wait_for_change(
                record["job_id"], wait=25.0, seen_state=state
            )
            assert updated["state"] != state or updated["state"] in (
                "done", "failed",
            )
            state = updated["state"]
        assert state == "done"

    def test_times_out_cleanly(self, idle_stack, tiny_matrix, paper_params):
        _, _, client = idle_stack
        record = client.submit_matrix(
            tiny_matrix, parameters_to_dict(paper_params)
        )
        started = time.monotonic()
        unchanged = client.wait_for_change(record["job_id"], wait=0.3)
        elapsed = time.monotonic() - started
        assert unchanged["state"] == "submitted"
        assert 0.25 <= elapsed < 5.0

    def test_terminal_state_answers_immediately(
        self, stack, running_example, paper_params
    ):
        _, client = stack
        record = client.submit_matrix(
            running_example, parameters_to_dict(paper_params)
        )
        client.wait(record["job_id"], timeout=60)
        started = time.monotonic()
        done = client.wait_for_change(record["job_id"], wait=10.0)
        assert done["state"] == "done"
        assert time.monotonic() - started < 5.0

    def test_survives_shutdown_mid_wait(
        self, idle_stack, tiny_matrix, paper_params
    ):
        service, _, client = idle_stack
        record = client.submit_matrix(
            tiny_matrix, parameters_to_dict(paper_params)
        )
        box = {}

        def waiter():
            box["record"] = client.wait_for_change(
                record["job_id"], wait=20.0
            )

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.3)  # let the long-poll park server-side
        started = time.monotonic()
        service.stop()
        thread.join(timeout=5)
        assert not thread.is_alive(), "long-poll hung through shutdown"
        assert time.monotonic() - started < 5.0
        assert box["record"]["state"] == "submitted"

    def test_bad_wait_values_rejected(
        self, idle_stack, tiny_matrix, paper_params
    ):
        _, _, client = idle_stack
        record = client.submit_matrix(
            tiny_matrix, parameters_to_dict(paper_params)
        )
        with pytest.raises(ServiceError) as info:
            client._request(
                "GET", f"/jobs/{record['job_id']}?wait=banana"
            )
        assert info.value.status == 400
        with pytest.raises(ServiceError) as info:
            client._request(
                "GET", f"/jobs/{record['job_id']}?wait=1&state=bogus"
            )
        assert info.value.status == 400


class TestPriorities:
    def test_priority_rides_the_wire(
        self, idle_stack, tiny_matrix, paper_params
    ):
        _, _, client = idle_stack
        record = client.submit_matrix(
            tiny_matrix, parameters_to_dict(paper_params), priority="high"
        )
        assert record["priority"] == "high"
        assert client.status(record["job_id"])["priority"] == "high"

    def test_bad_priority_is_400(
        self, idle_stack, tiny_matrix, paper_params
    ):
        _, _, client = idle_stack
        with pytest.raises(ServiceError) as info:
            client.submit_matrix(
                tiny_matrix,
                parameters_to_dict(paper_params),
                priority="urgent",
            )
        assert info.value.status == 400
        assert "unknown priority" in info.value.message


class TestPagination:
    def test_page_and_full_document(
        self, stack, running_example, paper_params
    ):
        _, client = stack
        record = client.submit_matrix(
            running_example, parameters_to_dict(paper_params)
        )
        client.wait(record["job_id"], timeout=60)
        full = client.result(record["job_id"])
        assert "page" not in full  # unpaged result is byte-identical
        total = len(full["clusters"])
        assert total >= 1
        page = client.result_page(record["job_id"], offset=0, limit=1)
        assert len(page["clusters"]) == 1
        assert page["clusters"][0] == full["clusters"][0]
        assert page["page"]["total_clusters"] == total
        assert page["page"]["offset"] == 0
        expected_next = 1 if total > 1 else None
        assert page["page"]["next_offset"] == expected_next
        # Walk every page and reassemble the full clusters list.
        clusters, offset = [], 0
        while offset is not None:
            chunk = client.result_page(
                record["job_id"], offset=offset, limit=1
            )
            clusters.extend(chunk["clusters"])
            offset = chunk["page"]["next_offset"]
        assert clusters == full["clusters"]

    def test_bad_page_values_rejected(
        self, stack, running_example, paper_params
    ):
        _, client = stack
        record = client.submit_matrix(
            running_example, parameters_to_dict(paper_params)
        )
        client.wait(record["job_id"], timeout=60)
        with pytest.raises(ServiceError) as info:
            client.result_page(record["job_id"], offset=-1)
        assert info.value.status == 400
        with pytest.raises(ServiceError) as info:
            client.result_page(record["job_id"], offset=0, limit=0)
        assert info.value.status == 400


@pytest.mark.parametrize(
    "idle_stack", [{"tenant_quota": 1, "http_workers": 4}], indirect=True
)
class TestTenantQuota:
    def test_exhaustion_and_refill_under_concurrency(
        self, idle_stack, tiny_matrix, paper_params
    ):
        service, _, client = idle_stack
        record = client.submit_matrix(
            tiny_matrix, parameters_to_dict(paper_params)
        )
        job_id = record["job_id"]
        impatient = ServiceClient(client.base_url, connect_retries=0)

        # One long-poll holds the single quota slot ...
        box = {}

        def holder():
            box["r"] = impatient.wait_for_change(job_id, wait=2.0)

        thread = threading.Thread(target=holder)
        thread.start()
        time.sleep(0.3)
        # ... so a concurrent same-tenant request sheds as ServiceBusy.
        with pytest.raises(ServiceBusy) as info:
            impatient.status(job_id)
        assert info.value.status == 429
        assert info.value.retry_after >= 1.0
        assert isinstance(info.value, ServiceError)
        # A *different* tenant is not affected by this tenant's quota.
        other = ServiceClient(
            client.base_url, connect_retries=0, tenant="other-team"
        )
        assert other.status(job_id)["job_id"] == job_id
        thread.join(timeout=10)
        # Slot released: the same tenant is admitted again (refill).
        assert impatient.status(job_id)["job_id"] == job_id

    def test_concurrent_submitters_all_finish_with_retries(
        self, idle_stack, tiny_matrix, paper_params
    ):
        _, server, client = idle_stack
        record = client.submit_matrix(
            tiny_matrix, parameters_to_dict(paper_params)
        )
        job_id = record["job_id"]
        # Clients with retry budget: sheds are retried with the
        # server's Retry-After honored, so all eventually succeed.
        results, errors = [], []

        def poller(index):
            patient = ServiceClient(
                client.base_url, connect_retries=6, retry_backoff=0.05
            )
            try:
                results.append(patient.status(job_id)["state"])
            # Collect rather than raise: a failure in a poller thread
            # must fail the assertion below, not vanish with the thread.
            except Exception as error:  # reglint: disable=RL103
                errors.append(error)

        threads = [
            threading.Thread(target=poller, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert results == ["submitted"] * 8
        shed = server.service.metrics.render()
        assert "repro_http_shed_total" in shed


@pytest.mark.parametrize(
    "idle_stack",
    [{"tenant_rate": 2.0, "tenant_burst": 1.0}],
    indirect=True,
)
class TestTenantRateLimit:
    def test_burst_then_shed_then_refill(
        self, idle_stack, tiny_matrix, paper_params
    ):
        _, _, client = idle_stack
        impatient = ServiceClient(
            client.base_url, connect_retries=0, tenant="acme"
        )
        record = impatient.submit_matrix(
            tiny_matrix, parameters_to_dict(paper_params)
        )
        job_id = record["job_id"]
        # The 1-token burst is spent on the submit, and at 2 tokens/s
        # no new token exists milliseconds later ...
        with pytest.raises(ServiceBusy) as info:
            impatient.status(job_id)
        assert info.value.retry_after >= 1.0
        # ... but an unrelated tenant has its own bucket ...
        other = ServiceClient(
            client.base_url, connect_retries=0, tenant="zenith"
        )
        assert other.status(job_id)["state"] == "submitted"
        # ... and at 2 tokens/second the bucket soon refills.
        deadline = time.monotonic() + 5.0
        while True:
            try:
                assert impatient.status(job_id)["state"] == "submitted"
                break
            except ServiceBusy:
                assert time.monotonic() < deadline, "bucket never refilled"
                time.sleep(0.1)

    def test_healthz_and_metrics_exempt(self, idle_stack):
        _, _, client = idle_stack
        impatient = ServiceClient(client.base_url, connect_retries=0)
        # Far more scrapes than the 2-token bucket would admit: the
        # observability plane bypasses admission control entirely.
        for _ in range(10):
            assert impatient.health()["status"] == "ok"
            assert "repro_http_requests_total" in impatient.metrics()


@pytest.mark.parametrize(
    "idle_stack",
    [{"http_workers": 1, "queue_depth": 1}],
    indirect=True,
)
class TestQueueShed:
    def test_full_queue_sheds_with_retry_after(
        self, idle_stack, tiny_matrix, paper_params
    ):
        _, _, client = idle_stack
        record = client.submit_matrix(
            tiny_matrix, parameters_to_dict(paper_params)
        )
        job_id = record["job_id"]
        impatient = ServiceClient(client.base_url, connect_retries=0)

        # Park the only worker in a long-poll, then fill the depth-1
        # queue with a second long-poll; the next request must shed.
        parked = []

        def park(wait_s):
            try:
                parked.append(
                    impatient.wait_for_change(job_id, wait=wait_s)
                )
            except ServiceBusy:
                parked.append(None)

        first = threading.Thread(target=park, args=(2.0,))
        first.start()
        time.sleep(0.3)
        second = threading.Thread(target=park, args=(0.5,))
        second.start()
        time.sleep(0.2)
        with pytest.raises(ServiceBusy) as info:
            impatient.status(job_id)
        assert info.value.status == 429
        assert "queue" in str(info.value)
        first.join(timeout=10)
        second.join(timeout=10)


class TestPipelining:
    def test_deep_pipeline_served_iteratively(self, idle_stack):
        """Hundreds of pipelined requests in one buffer must not blow
        the event-loop stack (the old recursive flush -> parse cycle
        raised RecursionError and killed the whole server)."""
        _, server, _ = idle_stack
        host, port = server.server_address[0], server.server_address[1]
        n = 400
        sock = socket.create_connection((host, port), timeout=10)
        try:
            sock.sendall(b"GET /healthz HTTP/1.1\r\n\r\n" * n)
            sock.settimeout(10)
            received = bytearray()
            while received.count(b"HTTP/1.1 200") < n:
                chunk = sock.recv(65536)
                assert chunk, (
                    f"connection closed after "
                    f"{received.count(b'HTTP/1.1 200')}/{n} responses"
                )
                received.extend(chunk)
        finally:
            sock.close()
        # The loop survived: a fresh request still gets answered.
        probe = ServiceClient(f"http://{host}:{port}", connect_retries=2)
        assert probe.health()["status"] == "ok"

    def test_negative_content_length_rejected(self, idle_stack):
        """Content-Length: -5 must 400 and close, not desync the
        buffer into mis-parsing the trailing head bytes."""
        _, server, _ = idle_stack
        host, port = server.server_address[0], server.server_address[1]
        sock = socket.create_connection((host, port), timeout=10)
        try:
            sock.sendall(
                b"POST /jobs HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
            )
            sock.settimeout(10)
            data = sock.recv(65536)
            assert b" 400 " in data.split(b"\r\n", 1)[0]
            assert b"Connection: close" in data
        finally:
            sock.close()
        probe = ServiceClient(f"http://{host}:{port}", connect_retries=2)
        assert probe.health()["status"] == "ok"


@pytest.mark.parametrize(
    "idle_stack", [{"idle_timeout": 0.5}], indirect=True
)
class TestIdleTimeout:
    def test_silent_connection_is_reaped(self, idle_stack):
        _, server, client = idle_stack
        host, port = server.server_address[0], server.server_address[1]
        sock = socket.create_connection((host, port), timeout=10)
        try:
            sock.settimeout(10)
            # Never send a request: the sweep (1s cadence) must close
            # the socket instead of letting it hold a slot forever.
            assert sock.recv(4096) == b""
        finally:
            sock.close()
        assert "repro_http_idle_closed_total 1" in client.metrics()

    def test_longpoll_outlives_idle_timeout(
        self, idle_stack, tiny_matrix, paper_params
    ):
        # A parked long-poll is waiting on the *server*, not the
        # client — it must not be reaped as idle mid-wait.
        _, _, client = idle_stack
        record = client.submit_matrix(
            tiny_matrix, parameters_to_dict(paper_params)
        )
        unchanged = client.wait_for_change(record["job_id"], wait=2.0)
        assert unchanged["state"] == "submitted"


class TestTenantStateBounds:
    def test_bucket_lru_and_label_cardinality_capped(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(frontdoor, "MAX_TRACKED_TENANTS", 4)
        monkeypatch.setattr(frontdoor, "MAX_TENANT_LABELS", 3)
        service = MiningService(tmp_path / "store")
        server = serve(service, tenant_rate=1000.0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[0], server.server_address[1]
        try:
            for index in range(10):
                tenant_client = ServiceClient(
                    f"http://{host}:{port}",
                    connect_retries=2,
                    tenant=f"tenant-{index}",
                )
                assert tenant_client.list_jobs() == []
            snapshot = server.admission_snapshot()
            # Random tenant names must not grow bucket state ...
            assert len(snapshot["tenants_seen"]) <= 4
            # ... nor metric label cardinality: the overflow tenants
            # all collapse into the "other" label.
            text = service.metrics.render()
            admits = [
                line for line in text.splitlines()
                if line.startswith("repro_http_admitted_total{")
            ]
            assert len(admits) <= 4  # 3 tracked + "other"
            assert any('tenant="other"' in line for line in admits)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.stop()

    def test_tenant_name_truncated_for_accounting(self, tmp_path):
        service = MiningService(tmp_path / "store")
        server = serve(service, tenant_rate=1000.0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[0], server.server_address[1]
        try:
            long_name = "t" * 500
            tenant_client = ServiceClient(
                f"http://{host}:{port}", connect_retries=2,
                tenant=long_name,
            )
            assert tenant_client.list_jobs() == []
            snapshot = server.admission_snapshot()
            assert all(
                len(name) <= frontdoor.MAX_TENANT_NAME_CHARS
                for name in snapshot["tenants_seen"]
            )
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.stop()


class TestConnectionCap:
    def test_excess_connection_gets_canned_429(self, tmp_path):
        service = MiningService(tmp_path / "store")
        server = serve(service, max_connections=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[0], server.server_address[1]
        try:
            holder = socket.create_connection((host, port), timeout=5)
            time.sleep(0.3)  # let the loop register the connection
            extra = socket.create_connection((host, port), timeout=5)
            extra.settimeout(5)
            data = extra.recv(4096)
            assert b"429" in data.split(b"\r\n", 1)[0]
            assert b"Retry-After" in data
            holder.close()
            extra.close()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.stop()

    def test_shed_counter_visible_in_metrics(self, tmp_path):
        service = MiningService(tmp_path / "store")
        server = serve(service, max_connections=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[0], server.server_address[1]
        try:
            holder = socket.create_connection((host, port), timeout=5)
            time.sleep(0.3)
            extra = socket.create_connection((host, port), timeout=5)
            extra.settimeout(5)
            extra.recv(4096)
            extra.close()
            holder.close()
            time.sleep(0.3)  # free the slot before scraping
            client = ServiceClient(f"http://{host}:{port}")
            text = client.metrics()
            assert 'repro_http_shed_total{reason="connections"}' in text
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.stop()
