"""End-to-end tests of the HTTP front end (server + client)."""

from __future__ import annotations

import threading

import pytest

from repro.core.miner import mine_reg_clusters
from repro.core.serialize import result_to_dict
from repro.matrix.io import format_expression_text
from repro.service.http import ServiceClient, ServiceError, serve
from repro.service.jobs import parameters_to_dict
from repro.service.service import MiningService


@pytest.fixture
def stack(tmp_path):
    """A running service + HTTP server + client on an ephemeral port."""
    service = MiningService(tmp_path / "store")
    server = serve(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    service.start()
    host, port = server.server_address[0], server.server_address[1]
    client = ServiceClient(f"http://{host}:{port}")
    yield service, client
    service.stop()
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestJobFlow:
    def test_submit_wait_result(self, stack, running_example, paper_params):
        _, client = stack
        record = client.submit_matrix(
            running_example, parameters_to_dict(paper_params)
        )
        assert record["state"] in ("submitted", "running", "done")
        done = client.wait(record["job_id"], timeout=60)
        assert done["state"] == "done"
        reference = mine_reg_clusters(
            running_example,
            min_genes=paper_params.min_genes,
            min_conditions=paper_params.min_conditions,
            gamma=paper_params.gamma,
            epsilon=paper_params.epsilon,
        )
        assert client.result(record["job_id"]) == result_to_dict(
            reference, running_example
        )

    def test_submit_text_payload(self, stack, running_example, paper_params):
        _, client = stack
        text = format_expression_text(running_example)
        record = client.submit_text(text, parameters_to_dict(paper_params))
        done = client.wait(record["job_id"], timeout=60)
        assert done["state"] == "done"
        payload = client.result(record["job_id"])
        assert len(payload["clusters"]) == 1

    def test_list_jobs(self, stack, running_example, paper_params):
        _, client = stack
        record = client.submit_matrix(
            running_example, parameters_to_dict(paper_params)
        )
        client.wait(record["job_id"], timeout=60)
        jobs = client.list_jobs()
        assert [j["job_id"] for j in jobs] == [record["job_id"]]

    def test_resubmission_is_idempotent(self, stack, running_example,
                                        paper_params):
        _, client = stack
        first = client.submit_matrix(
            running_example, parameters_to_dict(paper_params)
        )
        client.wait(first["job_id"], timeout=60)
        again = client.submit_matrix(
            running_example, parameters_to_dict(paper_params)
        )
        assert again["job_id"] == first["job_id"]
        assert again["state"] == "done"

    def test_delete_terminal_job(self, stack, running_example, paper_params):
        _, client = stack
        record = client.submit_matrix(
            running_example, parameters_to_dict(paper_params)
        )
        client.wait(record["job_id"], timeout=60)
        client.cancel(record["job_id"])  # DELETE on a done job removes it
        with pytest.raises(ServiceError) as info:
            client.status(record["job_id"])
        assert info.value.status == 404


class TestErrors:
    def test_unknown_job_is_404(self, stack):
        _, client = stack
        with pytest.raises(ServiceError) as info:
            client.status("job-" + "0" * 16)
        assert info.value.status == 404
        assert "unknown job" in info.value.message

    def test_invalid_parameters_are_400(self, stack, running_example):
        _, client = stack
        with pytest.raises(ServiceError) as info:
            client.submit_matrix(
                running_example,
                {"min_genes": 3, "min_conditions": 5, "gamma": 9.0,
                 "epsilon": 0.1},
            )
        assert info.value.status == 400
        assert "gamma" in info.value.message

    def test_unknown_parameter_key_is_400(self, stack, running_example):
        _, client = stack
        with pytest.raises(ServiceError) as info:
            client.submit_matrix(
                running_example,
                {"min_genes": 3, "min_conditions": 5, "gamma": 0.15,
                 "epsilon": 0.1, "bogus": 1},
            )
        assert info.value.status == 400
        assert "unknown mining parameter" in info.value.message

    def test_result_before_done_is_409(self, tmp_path, running_example,
                                       paper_params):
        # A service whose executor never starts: jobs stay submitted.
        service = MiningService(tmp_path / "store")
        server = serve(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[0], server.server_address[1]
            client = ServiceClient(f"http://{host}:{port}")
            record = client.submit_matrix(
                running_example, parameters_to_dict(paper_params)
            )
            with pytest.raises(ServiceError) as info:
                client.result(record["job_id"])
            assert info.value.status == 409
            assert "not done" in info.value.message
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_unknown_route_is_404(self, stack):
        _, client = stack
        with pytest.raises(ServiceError) as info:
            client._request("GET", "/frobnicate")
        assert info.value.status == 404

    def test_malformed_body_is_400(self, stack):
        _, client = stack
        import json
        import urllib.request

        request = urllib.request.Request(
            client.base_url + "/jobs", method="POST",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        import urllib.error
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400
        payload = json.loads(info.value.read().decode("utf-8"))
        assert "not valid JSON" in payload["error"]

    def test_matrix_payload_must_pick_one_kind(self, stack):
        _, client = stack
        with pytest.raises(ServiceError) as info:
            client._request(
                "POST", "/jobs",
                {
                    "matrix": {"text": "x", "path": "y"},
                    "parameters": {"min_genes": 3, "min_conditions": 5,
                                   "gamma": 0.15, "epsilon": 0.1},
                },
            )
        assert info.value.status == 400
        assert "exactly one" in info.value.message


class TestClientRetry:
    def test_retries_connection_refused_until_the_daemon_is_up(
        self, tmp_path
    ):
        import socket
        import time

        # Reserve an ephemeral port, then bring the server up on it only
        # after a delay: the client's first attempts are refused and
        # must be retried, not surfaced.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        service = MiningService(tmp_path / "store")
        box = {}

        def late_start():
            time.sleep(0.3)
            box["server"] = serve(service, "127.0.0.1", port)
            box["server"].serve_forever()

        starter = threading.Thread(target=late_start, daemon=True)
        starter.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{port}",
                connect_retries=8,
                retry_backoff=0.1,
            )
            assert client.list_jobs() == []
        finally:
            if "server" in box:
                box["server"].shutdown()
                box["server"].server_close()
            starter.join(timeout=5)
            service.stop()

    def test_raises_after_exhausting_connection_retries(self):
        import socket
        import urllib.error

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here

        client = ServiceClient(
            f"http://127.0.0.1:{port}",
            connect_retries=1,
            retry_backoff=0.01,
        )
        with pytest.raises(urllib.error.URLError):
            client.list_jobs()

    def test_4xx_is_never_retried(self, stack):
        _, client = stack
        retrying = ServiceClient(
            client.base_url, connect_retries=5, retry_backoff=0.01
        )
        with pytest.raises(ServiceError) as info:
            retrying.status("job-" + "0" * 16)
        assert info.value.status == 404

    @pytest.mark.parametrize(
        "kwargs",
        [{"connect_retries": -1}, {"retry_backoff": -0.5}],
    )
    def test_rejects_invalid_retry_settings(self, kwargs):
        with pytest.raises(ValueError):
            ServiceClient("http://127.0.0.1:1", **kwargs)

    def test_retries_connection_reset_mid_request(self, stack, monkeypatch):
        # A reset on an *established* connection surfaces outside
        # urllib's URLError wrapping — as ConnectionResetError or its
        # subclass http.client.RemoteDisconnected (a keep-alive socket
        # the server dropped between requests).  The client must retry
        # it like any transient failure, not crash the caller.
        import http.client
        import urllib.request

        _, client = stack
        real_urlopen = urllib.request.urlopen
        calls = {"n": 0}

        def flaky(request, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise http.client.RemoteDisconnected(
                    "Remote end closed connection without response"
                )
            if calls["n"] == 2:
                raise ConnectionResetError(104, "Connection reset by peer")
            return real_urlopen(request, **kwargs)

        monkeypatch.setattr(urllib.request, "urlopen", flaky)
        retrying = ServiceClient(
            client.base_url, connect_retries=3, retry_backoff=0.01
        )
        assert retrying.list_jobs() == []
        assert calls["n"] == 3

    def test_metrics_scrape_retries_connection_reset(
        self, stack, monkeypatch
    ):
        import http.client
        import urllib.request

        _, client = stack
        real_urlopen = urllib.request.urlopen
        calls = {"n": 0}

        def flaky(request, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise http.client.RemoteDisconnected(
                    "Remote end closed connection without response"
                )
            return real_urlopen(request, **kwargs)

        monkeypatch.setattr(urllib.request, "urlopen", flaky)
        retrying = ServiceClient(
            client.base_url, connect_retries=2, retry_backoff=0.01
        )
        assert "repro_http_requests_total" in retrying.metrics()
        assert calls["n"] == 2

    def test_connection_reset_exhausts_to_the_caller(self, monkeypatch):
        import urllib.request

        def always_reset(request, **kwargs):
            raise ConnectionResetError(104, "Connection reset by peer")

        monkeypatch.setattr(urllib.request, "urlopen", always_reset)
        client = ServiceClient(
            "http://127.0.0.1:1", connect_retries=1, retry_backoff=0.01
        )
        with pytest.raises(ConnectionResetError):
            client.list_jobs()


class TestDegradedOverHTTP:
    def test_degraded_result_is_served_not_409(self, tmp_path,
                                               running_example,
                                               paper_params):
        from repro.service.resilience import (
            FaultKind,
            FaultPlan,
            FaultSpec,
            RetryPolicy,
        )

        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.CRASH_SHARD, shard=6, times=100)]
        )
        service = MiningService(
            tmp_path / "store",
            retry=RetryPolicy(max_retries=0, backoff_base=0.0),
            fault_plan=plan,
        )
        server = serve(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        service.start()
        try:
            host, port = server.server_address[0], server.server_address[1]
            client = ServiceClient(f"http://{host}:{port}")
            record = client.submit_matrix(
                running_example, parameters_to_dict(paper_params)
            )
            done = client.wait(record["job_id"], timeout=60)
            assert done["state"] == "degraded"
            assert done["missing_shards"] == [6]
            payload = client.result(record["job_id"])  # 200, not 409
            assert "clusters" in payload
        finally:
            service.stop()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
