"""Tests for the repro.service daemon layer."""
