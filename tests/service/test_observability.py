"""Observability of the mining service: traces, metrics, health, logs."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.obs.log import configure_logging, reset_logging
from repro.obs.trace import Tracer, load_spans, summarize_trace
from repro.service.executor import mine_sharded_outcome
from repro.service.http import ServiceClient, serve
from repro.service.jobs import JobState, parameters_to_dict
from repro.service.resilience import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.service.service import MiningService


@pytest.fixture
def stack(tmp_path):
    """A running service + HTTP server + client on an ephemeral port."""
    service = MiningService(tmp_path / "store")
    server = serve(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    service.start()
    host, port = server.server_address[0], server.server_address[1]
    client = ServiceClient(f"http://{host}:{port}")
    yield service, client
    service.stop()
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


class TestHealthz:
    def test_health_payload(self, stack, running_example, paper_params):
        service, client = stack
        health = client.health()
        assert health["status"] == "ok"
        assert health["executor_alive"] is True
        assert health["n_workers"] == service.n_workers
        assert health["uptime_seconds"] >= 0.0
        assert set(health["jobs"]) == {
            state.value for state in JobState
        }

    def test_job_counts_move(self, stack, running_example, paper_params):
        _, client = stack
        record = client.submit_matrix(
            running_example, parameters_to_dict(paper_params)
        )
        client.wait(record["job_id"], timeout=60)
        assert client.health()["jobs"]["done"] == 1


class TestMetricsEndpoint:
    def test_families_and_format(self, stack, running_example, paper_params):
        _, client = stack
        record = client.submit_matrix(
            running_example, parameters_to_dict(paper_params)
        )
        client.wait(record["job_id"], timeout=60)
        text = client.metrics()
        families = [
            line.split()[2]
            for line in text.splitlines()
            if line.startswith("# TYPE ")
        ]
        assert len(families) >= 10
        assert len(set(families)) == len(families)
        # Every sample line is `name{labels} value` with a float value.
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value_part = line.rsplit(" ", 1)
            assert name_part[0].isalpha() or name_part[0] == "_"
            float(value_part)  # +Inf-free sample values always parse

    def test_job_metrics_after_completion(
        self, stack, running_example, paper_params
    ):
        _, client = stack
        record = client.submit_matrix(
            running_example, parameters_to_dict(paper_params)
        )
        client.wait(record["job_id"], timeout=60)
        text = client.metrics()
        assert "repro_jobs_submitted_total 1" in text
        assert 'repro_jobs_total{state="done"} 1' in text
        assert 'repro_jobs_current{state="done"} 1' in text
        assert 'repro_jobs_current{state="running"} 0' in text
        assert "repro_job_seconds_count 1" in text
        assert "repro_mining_nodes_expanded_total 17" in text

    def test_http_requests_counted(self, stack):
        _, client = stack
        client.health()
        text = client.metrics()
        assert 'repro_http_requests_total{method="GET",status="200"}' in text
        assert "repro_http_request_seconds" in text

    def test_cache_collector_present(self, stack):
        _, client = stack
        text = client.metrics()
        assert "repro_cache_bytes" in text
        assert "repro_cache_evictions_total" in text


class TestAccessLogs:
    @pytest.fixture(autouse=True)
    def clean_logging(self):
        yield
        reset_logging()

    def _boot(self, tmp_path, quiet):
        service = MiningService(tmp_path / "store")
        server = serve(service, quiet=quiet)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[0], server.server_address[1]
        client = ServiceClient(f"http://{host}:{port}")
        return service, server, thread, client

    def _shutdown(self, service, server, thread):
        service.stop()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_quiet_mode_suppresses_access_events(self, tmp_path):
        stream = io.StringIO()
        configure_logging(stream=stream, fmt="json")
        service, server, thread, client = self._boot(tmp_path, quiet=True)
        try:
            client.health()
        finally:
            self._shutdown(service, server, thread)
        events = [
            json.loads(line)["event"]
            for line in stream.getvalue().splitlines()
        ]
        assert "http.access" not in events

    def test_verbose_mode_logs_access_events(self, tmp_path):
        stream = io.StringIO()
        configure_logging(stream=stream, fmt="json")
        service, server, thread, client = self._boot(tmp_path, quiet=False)
        try:
            client.health()
        finally:
            self._shutdown(service, server, thread)
        access = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
            if json.loads(line)["event"] == "http.access"
        ]
        assert access, "verbose server should emit http.access events"
        assert access[0]["method"] == "GET"
        assert access[0]["path"] == "/healthz"
        assert access[0]["status"] == 200
        assert access[0]["duration_ms"] >= 0


class TestTraceStitching:
    """The tentpole guarantee: many processes, one coherent trace."""

    def test_four_worker_job_stitches_under_one_root(
        self, tmp_path, running_example, paper_params
    ):
        path = tmp_path / "job.trace.jsonl"
        tracer = Tracer(path)
        root = tracer.span("job")
        outcome = mine_sharded_outcome(
            running_example,
            paper_params,
            n_workers=4,
            tracer=tracer,
            trace_parent=root.context,
        )
        root.end()
        tracer.close()
        assert not outcome.missing_shards

        spans = load_spans(path)
        assert {s["trace_id"] for s in spans} == {tracer.trace_id}
        shard_spans = [s for s in spans if s["name"] == "shard"]
        assert len(shard_spans) == running_example.n_conditions
        assert {s["parent_id"] for s in shard_spans} == {root.span_id}
        assert sorted(
            s["attributes"]["shard"] for s in shard_spans
        ) == list(range(running_example.n_conditions))
        # Spans were written by several worker processes, yet stitched.
        assert len({s["pid"] for s in shard_spans}) >= 2

        # The shards' phase timers sum (within float tolerance) to the
        # job-level totals the merged result reports.
        for phase, total in outcome.result.statistics.timers.as_dict().items():
            summed = sum(
                s["attributes"].get(f"time_{phase}", 0.0)
                for s in shard_spans
            )
            assert summed == pytest.approx(total, rel=1e-6, abs=1e-9)

    def test_crash_and_retry_keeps_both_attempts(
        self, tmp_path, running_example, paper_params
    ):
        victim = 4
        path = tmp_path / "chaos.trace.jsonl"
        tracer = Tracer(path)
        root = tracer.span("job")
        outcome = mine_sharded_outcome(
            running_example,
            paper_params,
            n_workers=4,
            tracer=tracer,
            trace_parent=root.context,
            retry=RetryPolicy(max_retries=2, backoff_base=0.001),
            fault_plan=FaultPlan(
                [FaultSpec(kind=FaultKind.CRASH_SHARD, shard=victim,
                           times=1)],
                seed=3,
            ),
        )
        root.end()
        tracer.close()
        assert not outcome.missing_shards

        spans = load_spans(path)
        attempts = {
            s["attributes"]["attempt"]: s["attributes"].get("outcome")
            for s in spans
            if s["name"] == "shard"
            and s["attributes"].get("shard") == victim
        }
        assert attempts == {0: "failed", 1: "ok"}
        rendered = summarize_trace(spans)
        assert f"{victim:>5}  {2:>8}  {'ok':<8}" in rendered


class TestServiceTraceDir:
    def test_job_trace_written_with_lifecycle_spans(
        self, tmp_path, running_example, paper_params
    ):
        trace_dir = tmp_path / "traces"
        service = MiningService(
            tmp_path / "store", n_workers=1, trace_dir=trace_dir
        )
        try:
            record = service.submit(running_example, paper_params)
            service.run_pending()
            assert service.status(record.job_id).state is JobState.DONE
        finally:
            service.stop()
        spans = load_spans(trace_dir / f"{record.job_id}.trace.jsonl")
        by_name = {s["name"] for s in spans}
        assert {"job", "matrix.load", "index", "kernel", "mine",
                "result.persist"} <= by_name
        (job,) = [s for s in spans if s["name"] == "job"]
        assert job["parent_id"] is None
        assert job["attributes"]["job_id"] == record.job_id
        assert job["attributes"]["outcome"] == "done"

    def test_no_trace_dir_writes_nothing(
        self, tmp_path, running_example, paper_params
    ):
        service = MiningService(tmp_path / "store", n_workers=1)
        try:
            record = service.submit(running_example, paper_params)
            service.run_pending()
            assert service.status(record.job_id).state is JobState.DONE
        finally:
            service.stop()
        assert not list(tmp_path.glob("**/*.trace.jsonl"))


class TestDegradedObservability:
    def test_degraded_job_surfaces_everywhere(
        self, tmp_path, running_example, paper_params
    ):
        victim = 6
        trace_dir = tmp_path / "traces"
        service = MiningService(
            tmp_path / "store",
            n_workers=1,
            retry=RetryPolicy(max_retries=0),
            fault_plan=FaultPlan(
                [FaultSpec(kind=FaultKind.CRASH_SHARD, shard=victim,
                           times=10 ** 6)],
                seed=1,
            ),
            trace_dir=trace_dir,
        )
        try:
            record = service.submit(running_example, paper_params)
            service.run_pending()
            done = service.status(record.job_id)
            assert done.state is JobState.DEGRADED
            text = service.metrics.render()
        finally:
            service.stop()
        assert 'repro_jobs_current{state="degraded"} 1' in text
        assert "repro_shards_lost_total 1" in text
        assert 'repro_faults_injected_total{kind="crash-shard"} 1' in text
        spans = load_spans(trace_dir / f"{record.job_id}.trace.jsonl")
        (job,) = [s for s in spans if s["name"] == "job"]
        assert job["attributes"]["outcome"] == "degraded"
        (mine,) = [s for s in spans if s["name"] == "mine"]
        assert mine["attributes"]["missing_shards"] == [victim]
