"""Unit tests for the LRU artifact cache."""

from __future__ import annotations

import pytest

from repro.core.rwave import RWaveIndex
from repro.matrix.summary import matrix_digest
from repro.service.cache import ArtifactCache


@pytest.fixture
def cache(tmp_path) -> ArtifactCache:
    return ArtifactCache(tmp_path / "cache")


class TestIndexArtifacts:
    def test_round_trip(self, cache, running_example):
        digest = matrix_digest(running_example)
        index = RWaveIndex(running_example, 0.15)
        assert cache.get_index(digest, 0.15) is None
        cache.put_index(digest, 0.15, index)
        again = cache.get_index(digest, 0.15)
        assert again is not None
        assert again.gamma == index.gamma
        assert again.matrix == running_example

    def test_keyed_by_gamma(self, cache, running_example):
        digest = matrix_digest(running_example)
        cache.put_index(digest, 0.15, RWaveIndex(running_example, 0.15))
        assert cache.get_index(digest, 0.3) is None

    def test_corrupt_artifact_is_a_miss(self, cache, running_example):
        digest = matrix_digest(running_example)
        cache.put_index(digest, 0.15, RWaveIndex(running_example, 0.15))
        (entry_name,) = [k for k in cache.keys() if k.startswith("index-")]
        artifact = next(cache.root.glob("index-*.pkl"))
        artifact.write_bytes(b"not a pickle")
        assert cache.get_index(digest, 0.15) is None
        assert entry_name not in cache.keys()

    def test_stats_track_hits_and_misses(self, cache, running_example):
        digest = matrix_digest(running_example)
        cache.get_index(digest, 0.15)
        cache.put_index(digest, 0.15, RWaveIndex(running_example, 0.15))
        cache.get_index(digest, 0.15)
        stats = cache.stats.as_dict()
        assert stats["index_misses"] == 1
        assert stats["index_stores"] == 1
        assert stats["index_hits"] == 1


class TestResultArtifacts:
    def test_round_trip_and_drop(self, cache):
        payload = {"format": "reg-cluster/v1", "clusters": []}
        job_id = "job-" + "a" * 16
        assert cache.get_result(job_id) is None
        cache.put_result(job_id, payload)
        assert cache.get_result(job_id) == payload
        cache.drop_result(job_id)
        assert cache.get_result(job_id) is None

    def test_drop_unknown_is_a_noop(self, cache):
        cache.drop_result("job-" + "b" * 16)


class TestLRUBound:
    def test_eviction_drops_least_recently_used(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=200)
        blob = {"data": "x" * 60}  # ~75 serialized bytes
        cache.put_result("job-" + "1" * 16, blob)
        cache.put_result("job-" + "2" * 16, blob)
        # Touch job-1 so job-2 becomes the LRU entry.
        assert cache.get_result("job-" + "1" * 16) is not None
        cache.put_result("job-" + "3" * 16, blob)
        assert cache.get_result("job-" + "1" * 16) is not None
        assert cache.get_result("job-" + "2" * 16) is None
        assert cache.get_result("job-" + "3" * 16) is not None
        assert cache.stats.evictions == 1
        assert cache.total_bytes() <= 200

    def test_oversized_artifact_still_caches_alone(self, tmp_path):
        cache = ArtifactCache(tmp_path, max_bytes=10)
        cache.put_result("job-" + "1" * 16, {"data": "x" * 100})
        assert cache.get_result("job-" + "1" * 16) is not None
        assert len(cache.keys()) == 1

    def test_invalid_bound_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ArtifactCache(tmp_path, max_bytes=0)


class TestPersistence:
    def test_manifest_survives_reopen(self, tmp_path, running_example):
        digest = matrix_digest(running_example)
        first = ArtifactCache(tmp_path)
        first.put_index(digest, 0.15, RWaveIndex(running_example, 0.15))
        first.put_result("job-" + "c" * 16, {"clusters": []})
        second = ArtifactCache(tmp_path)
        assert second.get_index(digest, 0.15) is not None
        assert second.get_result("job-" + "c" * 16) == {"clusters": []}

    def test_missing_file_pruned_from_manifest(self, tmp_path):
        first = ArtifactCache(tmp_path)
        first.put_result("job-" + "d" * 16, {"clusters": []})
        next(tmp_path.glob("result-*.json")).unlink()
        second = ArtifactCache(tmp_path)
        assert second.get_result("job-" + "d" * 16) is None
        assert not second.keys()


class TestKernelArtifacts:
    def test_round_trip(self, cache, running_example):
        digest = matrix_digest(running_example)
        index = RWaveIndex(running_example, 0.15)
        kernel = index.kernel
        assert cache.get_kernel(digest, 0.15) is None
        cache.put_kernel(digest, 0.15, kernel)
        again = cache.get_kernel(digest, 0.15)
        assert again is not None
        assert again.shape == kernel.shape
        for last in range(running_example.n_conditions):
            assert (again.up_slice(last) == kernel.up_slice(last)).all()

    def test_keyed_by_gamma(self, cache, running_example):
        digest = matrix_digest(running_example)
        cache.put_kernel(
            digest, 0.15, RWaveIndex(running_example, 0.15).kernel
        )
        assert cache.get_kernel(digest, 0.3) is None

    def test_keyed_apart_from_indexes(self, cache, running_example):
        digest = matrix_digest(running_example)
        index = RWaveIndex(running_example, 0.15)
        cache.put_index(digest, 0.15, index)
        cache.put_kernel(digest, 0.15, index.kernel)
        keys = cache.keys()
        assert any(k.startswith("index-") for k in keys)
        assert any(k.startswith("kernel-") for k in keys)

    def test_corrupt_artifact_is_a_miss(self, cache, running_example):
        digest = matrix_digest(running_example)
        cache.put_kernel(
            digest, 0.15, RWaveIndex(running_example, 0.15).kernel
        )
        next(cache.root.glob("kernel-*.pkl")).write_bytes(b"not a pickle")
        assert cache.get_kernel(digest, 0.15) is None
        assert not any(k.startswith("kernel-") for k in cache.keys())

    def test_stats_track_hits_and_misses(self, cache, running_example):
        digest = matrix_digest(running_example)
        cache.get_kernel(digest, 0.15)
        cache.put_kernel(
            digest, 0.15, RWaveIndex(running_example, 0.15).kernel
        )
        cache.get_kernel(digest, 0.15)
        stats = cache.stats.as_dict()
        assert stats["kernel_misses"] == 1
        assert stats["kernel_stores"] == 1
        assert stats["kernel_hits"] == 1
