"""Unit tests for the fault-injection and retry policy objects."""

from __future__ import annotations

import pickle

import pytest

from repro.service.resilience import (
    FAULTS_ENV_VAR,
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)


class TestFaultSpec:
    def test_round_trip(self):
        spec = FaultSpec(
            kind=FaultKind.DELAY_SHARD, shard=3, times=2, delay=0.5
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_defaults_round_trip_compactly(self):
        spec = FaultSpec(kind=FaultKind.CRASH_SHARD)
        assert spec.to_dict() == {"kind": "crash-shard"}
        assert FaultSpec.from_dict({"kind": "crash-shard"}) == spec

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec.from_dict({"kind": "meteor-strike"})

    def test_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown fault field"):
            FaultSpec.from_dict({"kind": "crash-shard", "sharrd": 1})

    @pytest.mark.parametrize(
        "kwargs", [{"times": 0}, {"times": -1}, {"delay": -0.1}]
    )
    def test_rejects_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.CRASH_SHARD, **kwargs)


class TestFaultPlanShardFaults:
    def test_matches_target_shard_within_budget(self):
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.CRASH_SHARD, shard=2, times=2)]
        )
        assert plan.shard_faults(2, attempt=0)
        assert plan.shard_faults(2, attempt=1)
        assert plan.shard_faults(2, attempt=2) == []
        assert plan.shard_faults(1, attempt=0) == []

    def test_wildcard_shard_matches_everything(self):
        plan = FaultPlan([FaultSpec(kind=FaultKind.KILL_WORKER)])
        assert plan.shard_faults(0, attempt=0)
        assert plan.shard_faults(99, attempt=0)
        assert plan.shard_faults(0, attempt=1) == []

    def test_is_pure_across_pickling(self):
        # The worker-side plan must fire identically to the parent's.
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.CRASH_SHARD, shard=4)], seed=9
        )
        clone = pickle.loads(pickle.dumps(plan))
        for shard in range(8):
            for attempt in range(3):
                assert plan.shard_faults(shard, attempt) == clone.shard_faults(
                    shard, attempt
                )

    def test_choose_shard_is_deterministic_and_in_range(self):
        for seed in range(20):
            victim = FaultPlan(seed=seed).choose_shard(10)
            assert 0 <= victim < 10
            assert victim == FaultPlan(seed=seed).choose_shard(10)

    def test_choose_shard_rejects_empty(self):
        with pytest.raises(ValueError, match="n_shards"):
            FaultPlan().choose_shard(0)


class TestFaultPlanCallCounted:
    def test_fire_consumes_the_budget(self):
        plan = FaultPlan([FaultSpec(kind=FaultKind.HTTP_5XX, times=2)])
        assert plan.fire(FaultKind.HTTP_5XX) is True
        assert plan.fire(FaultKind.HTTP_5XX) is True
        assert plan.fire(FaultKind.HTTP_5XX) is False
        assert plan.fired(FaultKind.HTTP_5XX) == 2

    def test_absent_kind_never_fires(self):
        plan = FaultPlan([FaultSpec(kind=FaultKind.CRASH_SHARD)])
        assert plan.fire(FaultKind.CACHE_WRITE_FAIL) is False
        assert plan.fired(FaultKind.CACHE_WRITE_FAIL) == 0


class TestFaultPlanSerialization:
    def test_json_round_trip(self):
        plan = FaultPlan(
            [
                FaultSpec(kind=FaultKind.KILL_WORKER, shard=1),
                FaultSpec(kind=FaultKind.HTTP_5XX, times=3),
            ],
            seed=42,
        )
        loaded = FaultPlan.from_json(plan.to_json())
        assert loaded.specs == plan.specs
        assert loaded.seed == plan.seed

    def test_accepts_bare_fault_list(self):
        plan = FaultPlan.from_json('[{"kind": "crash-shard", "shard": 2}]')
        assert plan.specs == [FaultSpec(kind=FaultKind.CRASH_SHARD, shard=2)]
        assert plan.seed == 0

    def test_rejects_malformed_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json("{nope")

    def test_rejects_unknown_plan_field(self):
        with pytest.raises(ValueError, match="unknown fault-plan field"):
            FaultPlan.from_dict({"seeds": 1, "faults": []})

    def test_from_env_unset_means_no_plan(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({FAULTS_ENV_VAR: "   "}) is None

    def test_from_env_parses_the_variable(self):
        env = {
            FAULTS_ENV_VAR: '{"seed": 5, "faults": '
            '[{"kind": "cache-write-fail"}]}'
        }
        plan = FaultPlan.from_env(env)
        assert plan is not None
        assert plan.seed == 5
        assert plan.specs == [FaultSpec(kind=FaultKind.CACHE_WRITE_FAIL)]


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            max_retries=5,
            backoff_base=0.1,
            backoff_factor=2.0,
            backoff_max=0.3,
            jitter=0.0,
        )
        assert policy.backoff(0, 0) == pytest.approx(0.1)
        assert policy.backoff(0, 1) == pytest.approx(0.2)
        assert policy.backoff(0, 2) == pytest.approx(0.3)  # capped
        assert policy.backoff(0, 9) == pytest.approx(0.3)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_max=10.0, jitter=0.25)
        seen = set()
        for shard in range(6):
            delay = policy.backoff(shard, 0)
            assert 1.0 <= delay < 1.25
            assert delay == policy.backoff(shard, 0)
            seen.add(delay)
        assert len(seen) > 1  # jitter actually decorrelates shards

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_base": -0.1},
            {"backoff_max": -1.0},
            {"backoff_factor": 0.5},
            {"jitter": -0.1},
        ],
    )
    def test_rejects_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)
