"""Unit tests for the job engine (ids, records, persistent store)."""

from __future__ import annotations

import pytest

from repro.core.params import MiningParameters
from repro.service.jobs import (
    ACTIVE_STATES,
    TERMINAL_STATES,
    JobRecord,
    JobState,
    JobStore,
    compute_job_id,
    parameters_from_dict,
    parameters_to_dict,
)


@pytest.fixture
def params() -> MiningParameters:
    return MiningParameters(
        min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
    )


@pytest.fixture
def record(params) -> JobRecord:
    return JobRecord(
        job_id=compute_job_id("d" * 64, params),
        state=JobState.SUBMITTED,
        matrix_digest="d" * 64,
        parameters=parameters_to_dict(params),
        submitted_at=100.0,
    )


class TestJobId:
    def test_deterministic(self, params):
        assert compute_job_id("abc", params) == compute_job_id("abc", params)

    def test_shape(self, params):
        job_id = compute_job_id("abc", params)
        assert job_id.startswith("job-")
        assert len(job_id) == len("job-") + 16

    def test_sensitive_to_digest_and_params(self, params):
        base = compute_job_id("abc", params)
        assert compute_job_id("abd", params) != base
        assert compute_job_id("abc", params.with_overrides(gamma=0.2)) != base
        assert (
            compute_job_id("abc", params.with_overrides(max_clusters=5))
            != base
        )

    def test_insensitive_to_parameter_dict_ordering(self, params):
        # The id hashes the canonical sorted-key JSON form, so two
        # parameter dicts with different insertion orders collide.
        a = parameters_from_dict(
            {"min_genes": 3, "min_conditions": 5, "gamma": 0.15,
             "epsilon": 0.1}
        )
        b = parameters_from_dict(
            {"epsilon": 0.1, "gamma": 0.15, "min_conditions": 5,
             "min_genes": 3}
        )
        assert compute_job_id("abc", a) == compute_job_id("abc", b)


class TestParameterDicts:
    def test_round_trip(self, params):
        assert parameters_from_dict(parameters_to_dict(params)) == params

    def test_round_trip_with_max_clusters(self, params):
        capped = params.with_overrides(max_clusters=7)
        assert parameters_from_dict(parameters_to_dict(capped)) == capped

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown mining parameter"):
            parameters_from_dict(
                {"min_genes": 3, "min_conditions": 5, "gamma": 0.15,
                 "epsilon": 0.1, "n_workers": 4}
            )

    def test_missing_key_rejected(self):
        with pytest.raises(ValueError, match="missing mining parameter"):
            parameters_from_dict({"min_genes": 3})

    def test_bounds_revalidated(self):
        with pytest.raises(ValueError, match="gamma"):
            parameters_from_dict(
                {"min_genes": 3, "min_conditions": 5, "gamma": 9.0,
                 "epsilon": 0.1}
            )


class TestStates:
    def test_partition(self):
        assert ACTIVE_STATES | TERMINAL_STATES == frozenset(JobState)
        assert not ACTIVE_STATES & TERMINAL_STATES


class TestJobRecord:
    def test_dict_round_trip(self, record):
        again = JobRecord.from_dict(record.to_dict())
        assert again == record
        assert again.state is JobState.SUBMITTED

    def test_state_serializes_as_plain_string(self, record):
        assert record.to_dict()["state"] == "submitted"


class TestJobStore:
    def test_save_get_round_trip(self, tmp_path, record):
        store = JobStore(tmp_path)
        store.save(record)
        assert store.get(record.job_id) == record

    def test_unknown_job_raises_key_error(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(KeyError, match="unknown job"):
            store.get("job-" + "0" * 16)

    def test_malformed_id_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(KeyError, match="malformed"):
            store.get("../../etc/passwd")
        assert not store.exists("not-a-job-id")

    def test_update_persists_changes(self, tmp_path, record):
        store = JobStore(tmp_path)
        store.save(record)
        store.update(record.job_id, state=JobState.RUNNING, started_at=101.0)
        again = store.get(record.job_id)
        assert again.state is JobState.RUNNING
        assert again.started_at == 101.0

    def test_delete(self, tmp_path, record):
        store = JobStore(tmp_path)
        store.save(record)
        store.delete(record.job_id)
        assert not store.exists(record.job_id)
        with pytest.raises(KeyError):
            store.delete(record.job_id)

    def test_survives_reopen(self, tmp_path, record):
        JobStore(tmp_path).save(record)
        assert JobStore(tmp_path).get(record.job_id) == record

    def test_list_records_oldest_first(self, tmp_path, record, params):
        store = JobStore(tmp_path)
        later = JobRecord(
            job_id=compute_job_id("e" * 64, params),
            state=JobState.DONE,
            matrix_digest="e" * 64,
            parameters=parameters_to_dict(params),
            submitted_at=200.0,
        )
        store.save(later)
        store.save(record)
        assert [r.submitted_at for r in store.list_records()] == [100.0, 200.0]


class TestShardCheckpoints:
    def test_round_trip(self, tmp_path, record):
        from repro.core.cluster import RegCluster

        store = JobStore(tmp_path)
        store.save(record)
        cluster = RegCluster(
            chain=(3, 5, 1), p_members=(0, 2), n_members=(1,)
        )
        shard = (3, [cluster], {"nodes_expanded": 17.0, "candidates": 4.0})
        store.save_shard(record.job_id, shard)
        loaded = store.load_shards(record.job_id)
        assert loaded == {3: shard}

    def test_checkpoints_survive_a_new_store_instance(self, tmp_path,
                                                      record):
        # The on-disk layout, not the object, is the source of truth —
        # exactly what a restarted daemon relies on.
        first = JobStore(tmp_path)
        first.save(record)
        first.save_shard(record.job_id, (0, [], {"nodes_expanded": 1.0}))
        first.save_shard(record.job_id, (4, [], {"nodes_expanded": 2.0}))
        second = JobStore(tmp_path)
        assert sorted(second.load_shards(record.job_id)) == [0, 4]

    def test_corrupt_checkpoint_is_skipped(self, tmp_path, record):
        store = JobStore(tmp_path)
        store.save(record)
        store.save_shard(record.job_id, (1, [], {"nodes_expanded": 5.0}))
        shards_dir = tmp_path / f"{record.job_id}.shards"
        (shards_dir / "shard-0002.json").write_text(
            '{"start": 2, "clusters": [{', encoding="utf-8"
        )  # torn write
        (shards_dir / "shard-0003.json").write_text(
            '{"start": 3}', encoding="utf-8"
        )  # missing fields
        loaded = store.load_shards(record.job_id)
        assert sorted(loaded) == [1]

    def test_clear_shards_removes_the_directory(self, tmp_path, record):
        store = JobStore(tmp_path)
        store.save(record)
        store.save_shard(record.job_id, (0, [], {}))
        shards_dir = tmp_path / f"{record.job_id}.shards"
        assert shards_dir.is_dir()
        store.clear_shards(record.job_id)
        assert not shards_dir.exists()
        store.clear_shards(record.job_id)  # idempotent no-op

    def test_load_shards_without_checkpoints_is_empty(self, tmp_path,
                                                      record):
        store = JobStore(tmp_path)
        store.save(record)
        assert store.load_shards(record.job_id) == {}

    def test_malformed_job_id_is_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(KeyError, match="malformed"):
            store.save_shard("../escape", (0, [], {}))


class TestDegradedState:
    def test_degraded_is_terminal_and_carries_a_result(self):
        from repro.service.jobs import RESULT_STATES

        assert JobState.DEGRADED in TERMINAL_STATES
        assert JobState.DEGRADED not in ACTIVE_STATES
        assert RESULT_STATES == {JobState.DONE, JobState.DEGRADED}

    def test_record_round_trips_resilience_fields(self, tmp_path, record):
        from dataclasses import replace

        store = JobStore(tmp_path)
        degraded = replace(
            record,
            state=JobState.DEGRADED,
            missing_shards=[2, 7],
            resumed_shards=[0, 1],
            shard_failures={"2": 3, "7": 3},
        )
        store.save(degraded)
        loaded = store.get(record.job_id)
        assert loaded.state is JobState.DEGRADED
        assert loaded.missing_shards == [2, 7]
        assert loaded.resumed_shards == [0, 1]
        assert loaded.shard_failures == {"2": 3, "7": 3}
