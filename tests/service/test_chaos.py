"""Chaos tests: injected faults must be healed or degrade gracefully.

The acceptance bar (docs/robustness.md):

* any single injected shard crash, given one retry, yields a ``done``
  job whose clusters **and statistics** are bit-identical to an
  uninjured run;
* a retry budget of zero yields a ``degraded`` (never ``failed``) job
  listing exactly the killed shard;
* checkpoints make interrupted or degraded jobs resume instead of
  re-mining, and the resumed result is bit-identical;
* cache-write failures and injected 503s are absorbed without losing a
  job or a response.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.miner import (
    MiningTimeout,
    RegClusterMiner,
    mine_reg_clusters,
)
from repro.core.serialize import result_to_dict
from repro.service.http import ServiceClient, ServiceError, serve
from repro.service.jobs import JobState
from repro.service.resilience import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.service.service import MiningService
from repro.service.executor import mine_sharded_outcome

#: Instant retries for tests — determinism comes from the plan, not
#: from real sleeping.
FAST_RETRY = RetryPolicy(max_retries=1, backoff_base=0.0, jitter=0.0)
NO_RETRY = RetryPolicy(max_retries=0, backoff_base=0.0, jitter=0.0)


@pytest.fixture
def reference(running_example, paper_params):
    return mine_reg_clusters(
        running_example,
        min_genes=paper_params.min_genes,
        min_conditions=paper_params.min_conditions,
        gamma=paper_params.gamma,
        epsilon=paper_params.epsilon,
    )


def crash_plan(shard, times=1):
    return FaultPlan(
        [FaultSpec(kind=FaultKind.CRASH_SHARD, shard=shard, times=times)]
    )


class TestExecutorFaultRecovery:
    """mine_sharded_outcome under injected shard faults (in-process)."""

    @pytest.mark.parametrize("shard", range(10))
    def test_any_single_shard_crash_recovers_bit_identically(
        self, running_example, paper_params, reference, shard
    ):
        outcome = mine_sharded_outcome(
            running_example,
            paper_params,
            retry=FAST_RETRY,
            fault_plan=crash_plan(shard),
        )
        assert not outcome.degraded
        assert outcome.failed_attempts == {shard: 1}
        assert outcome.result.clusters == reference.clusters
        assert (
            outcome.result.statistics.as_dict()
            == reference.statistics.as_dict()
        )

    @pytest.mark.parametrize("shard", range(10))
    def test_zero_retry_budget_degrades_listing_exactly_the_shard(
        self, running_example, paper_params, reference, shard
    ):
        outcome = mine_sharded_outcome(
            running_example,
            paper_params,
            retry=NO_RETRY,
            fault_plan=crash_plan(shard, times=10),
        )
        assert outcome.degraded
        assert outcome.missing_shards == [shard]
        assert shard in outcome.shard_errors
        assert "crash-shard" in outcome.shard_errors[shard]
        # The merged survivors: nothing from the lost shard, everything
        # the reference found elsewhere.
        assert all(
            c.chain[0] != shard for c in outcome.result.clusters
        )
        for cluster in reference.clusters:
            if cluster.chain[0] != shard:
                assert cluster in outcome.result.clusters

    def test_exhausted_retries_still_degrade(self, running_example,
                                             paper_params):
        # Two retries, three planned crashes: the shard stays lost and
        # every attempt is accounted for.
        outcome = mine_sharded_outcome(
            running_example,
            paper_params,
            retry=RetryPolicy(max_retries=2, backoff_base=0.0, jitter=0.0),
            fault_plan=crash_plan(4, times=10),
        )
        assert outcome.missing_shards == [4]
        assert outcome.failed_attempts == {4: 3}

    def test_kill_worker_breaks_and_rebuilds_the_pool(
        self, running_example, paper_params, reference
    ):
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.KILL_WORKER, shard=6, times=1)]
        )
        outcome = mine_sharded_outcome(
            running_example,
            paper_params,
            n_workers=2,
            retry=RetryPolicy(max_retries=2, backoff_base=0.0, jitter=0.0),
            fault_plan=plan,
        )
        assert not outcome.degraded
        assert outcome.failed_attempts.get(6) == 1
        assert outcome.result.clusters == reference.clusters
        assert (
            outcome.result.statistics.as_dict()
            == reference.statistics.as_dict()
        )

    def test_delayed_shard_trips_the_timeout(self, running_example,
                                             paper_params):
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.DELAY_SHARD, shard=0, delay=0.3)]
        )
        with pytest.raises(MiningTimeout, match="budget"):
            mine_sharded_outcome(
                running_example,
                paper_params,
                fault_plan=plan,
                timeout=0.05,
            )

    def test_checkpoints_resume_without_re_mining(
        self, running_example, paper_params, reference
    ):
        checkpoints = {}
        first = mine_sharded_outcome(
            running_example,
            paper_params,
            on_shard_complete=lambda shard: checkpoints.__setitem__(
                shard[0], shard
            ),
        )
        assert sorted(checkpoints) == list(range(10))
        # Re-run fully from checkpoints under an always-crash plan: if
        # any shard were re-mined it would crash, so completing proves
        # nothing was.
        resumed = mine_sharded_outcome(
            running_example,
            paper_params,
            retry=NO_RETRY,
            fault_plan=crash_plan(None, times=10),
            completed=checkpoints,
        )
        assert not resumed.degraded
        assert resumed.resumed_shards == list(range(10))
        assert resumed.result.clusters == first.result.clusters
        assert (
            resumed.result.statistics.as_dict()
            == reference.statistics.as_dict()
        )


class TestServiceChaos:
    """MiningService under faults: degraded jobs, resume, best-effort IO."""

    def test_degraded_job_then_clean_resume(self, tmp_path, running_example,
                                            paper_params, reference):
        store = tmp_path / "store"
        victim = reference.clusters[0].chain[0]
        hurt = MiningService(
            store,
            retry=NO_RETRY,
            fault_plan=crash_plan(victim, times=10),
        )
        record = hurt.submit(running_example, paper_params)
        assert hurt.run_pending() == 1
        degraded = hurt.status(record.job_id)
        assert degraded.state is JobState.DEGRADED
        assert degraded.missing_shards == [victim]
        assert degraded.error is not None and "crash-shard" in degraded.error
        payload = hurt.result(record.job_id)
        assert all(
            c["chain"][0] != running_example.condition_names[victim]
            for c in payload["clusters"]
        )
        # The partial payload must never poison the result cache.
        assert hurt.cache.get_result(record.job_id) is None

        # Faults cleared (new daemon, same store): resubmission resumes
        # the surviving shards and re-mines only the lost one.
        healed = MiningService(store)
        again = healed.submit(running_example, paper_params)
        assert again.job_id == record.job_id
        assert again.state is JobState.SUBMITTED
        assert healed.run_pending() == 1
        done = healed.status(record.job_id)
        assert done.state is JobState.DONE
        assert done.resumed_shards == sorted(set(range(10)) - {victim})
        assert healed.result(record.job_id) == result_to_dict(
            reference, running_example
        )
        # Checkpoints are garbage-collected once the job completes.
        assert healed.jobs.load_shards(record.job_id) == {}

    def test_daemon_killed_mid_job_resumes_from_checkpoints(
        self, tmp_path, running_example, paper_params, reference
    ):
        store = tmp_path / "store"
        first = MiningService(store)
        record = first.submit(running_example, paper_params)
        # Simulate a SIGKILL mid-job: the record says running, and some
        # shards had already been checkpointed.
        first.jobs.update(record.job_id, state=JobState.RUNNING)
        for start in range(7):
            shard = RegClusterMiner(running_example, paper_params).mine(
                start_conditions=[start]
            )
            first.jobs.save_shard(
                record.job_id,
                (start, shard.clusters, shard.statistics.as_dict()),
            )

        second = MiningService(store)  # restart re-arms the running job
        assert second.run_pending() == 1
        done = second.status(record.job_id)
        assert done.state is JobState.DONE
        assert done.resumed_shards == list(range(7))
        assert second.result(record.job_id) == result_to_dict(
            reference, running_example
        )

    def test_cache_write_failure_never_fails_the_job(
        self, tmp_path, running_example, paper_params, reference
    ):
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.CACHE_WRITE_FAIL, times=100)]
        )
        service = MiningService(tmp_path / "store", fault_plan=plan)
        record = service.submit(running_example, paper_params)
        assert service.run_pending() == 1
        done = service.status(record.job_id)
        assert done.state is JobState.DONE
        # Nothing reached the disk cache, yet the result is served.
        assert service.cache.get_result(record.job_id) is None
        assert service.result(record.job_id) == result_to_dict(
            reference, running_example
        )
        assert plan.fired(FaultKind.CACHE_WRITE_FAIL) >= 1

    def test_job_timeout_fails_but_keeps_checkpoints(
        self, tmp_path, running_example, paper_params, reference
    ):
        store = tmp_path / "store"
        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.DELAY_SHARD, shard=5, delay=0.4)]
        )
        slow = MiningService(store, job_timeout=0.1, fault_plan=plan)
        record = slow.submit(running_example, paper_params)
        assert slow.run_pending() == 1
        failed = slow.status(record.job_id)
        assert failed.state is JobState.FAILED
        assert failed.error is not None and "budget" in failed.error
        # Shards finished before the deadline were checkpointed.
        saved = slow.jobs.load_shards(record.job_id)
        assert sorted(saved) == list(range(5))

        patient = MiningService(store)  # no timeout, no faults
        again = patient.submit(running_example, paper_params)
        assert again.state is JobState.SUBMITTED
        assert patient.run_pending() == 1
        done = patient.status(record.job_id)
        assert done.state is JobState.DONE
        assert done.resumed_shards == list(range(5))
        assert patient.result(record.job_id) == result_to_dict(
            reference, running_example
        )

    def test_faults_can_be_armed_from_the_environment(
        self, tmp_path, running_example, paper_params, monkeypatch
    ):
        plan = crash_plan(2, times=10)
        monkeypatch.setenv("REPRO_FAULTS", plan.to_json())
        service = MiningService(tmp_path / "store", retry=NO_RETRY)
        record = service.submit(running_example, paper_params)
        service.run_pending()
        done = service.status(record.job_id)
        assert done.state is JobState.DEGRADED
        assert done.missing_shards == [2]


class TestHTTPChaos:
    """Injected 503s and the client's transparent retry."""

    def _serve(self, tmp_path, plan):
        service = MiningService(tmp_path / "store")
        server = serve(service, fault_plan=plan)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[0], server.server_address[1]
        return service, server, thread, f"http://{host}:{port}"

    def test_client_retries_through_injected_503s(self, tmp_path):
        plan = FaultPlan([FaultSpec(kind=FaultKind.HTTP_5XX, times=2)])
        service, server, thread, url = self._serve(tmp_path, plan)
        try:
            client = ServiceClient(
                url, connect_retries=4, retry_backoff=0.01
            )
            assert client.list_jobs() == []
            assert plan.fired(FaultKind.HTTP_5XX) == 2
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.stop()

    def test_retry_budget_zero_surfaces_the_503(self, tmp_path):
        plan = FaultPlan([FaultSpec(kind=FaultKind.HTTP_5XX, times=5)])
        service, server, thread, url = self._serve(tmp_path, plan)
        try:
            client = ServiceClient(url, connect_retries=0)
            with pytest.raises(ServiceError) as info:
                client.list_jobs()
            assert info.value.status == 503
            assert "http-5xx" in info.value.message
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.stop()
