"""End-to-end tests of MiningService: lifecycle, caching, cancellation."""

from __future__ import annotations

import pytest

from repro.core.miner import mine_reg_clusters
from repro.core.params import MiningParameters
from repro.core.serialize import result_to_dict
from repro.service.jobs import JobState
from repro.service.service import MiningService


@pytest.fixture
def service(tmp_path) -> MiningService:
    return MiningService(tmp_path / "store")


class TestLifecycle:
    def test_submit_run_result(self, service, running_example, paper_params):
        record = service.submit(running_example, paper_params)
        assert record.state is JobState.SUBMITTED
        assert service.run_pending() == 1
        done = service.status(record.job_id)
        assert done.state is JobState.DONE
        assert done.progress["clusters_emitted"] == 1
        reference = mine_reg_clusters(
            running_example,
            min_genes=paper_params.min_genes,
            min_conditions=paper_params.min_conditions,
            gamma=paper_params.gamma,
            epsilon=paper_params.epsilon,
        )
        assert service.result(record.job_id) == result_to_dict(
            reference, running_example
        )

    def test_result_of_unfinished_job_raises(self, service, running_example,
                                             paper_params):
        record = service.submit(running_example, paper_params)
        with pytest.raises(ValueError, match="not done"):
            service.result(record.job_id)

    def test_unknown_job_raises_key_error(self, service):
        with pytest.raises(KeyError):
            service.status("job-" + "0" * 16)

    def test_delete_requires_terminal_state(self, service, running_example,
                                            paper_params):
        record = service.submit(running_example, paper_params)
        with pytest.raises(ValueError, match="cancel before deleting"):
            service.delete(record.job_id)
        service.run_pending()
        service.delete(record.job_id)
        with pytest.raises(KeyError):
            service.status(record.job_id)


class TestIdempotence:
    def test_resubmission_returns_existing_record(self, service,
                                                  running_example,
                                                  paper_params):
        first = service.submit(running_example, paper_params)
        service.run_pending()
        again = service.submit(running_example, paper_params)
        assert again.job_id == first.job_id
        assert again.state is JobState.DONE
        # Nothing new was queued.
        assert service.run_pending() == 0

    def test_rearm_after_delete_hits_result_cache(self, service,
                                                  running_example,
                                                  paper_params):
        first = service.submit(running_example, paper_params)
        service.run_pending()
        payload = service.result(first.job_id)
        service.jobs.delete(first.job_id)  # drop the record, keep the cache
        again = service.submit(running_example, paper_params)
        assert again.job_id == first.job_id
        assert service.run_pending() == 1
        done = service.status(first.job_id)
        assert done.state is JobState.DONE
        assert done.result_cache_hit is True
        assert service.result(first.job_id) == payload


class TestIndexCache:
    def test_same_gamma_different_epsilon_reuses_index(self, service,
                                                       running_example,
                                                       paper_params):
        first = service.submit(running_example, paper_params)
        service.run_pending()
        assert service.status(first.job_id).index_cache_hit is False

        relaxed = paper_params.with_overrides(epsilon=0.3)
        second = service.submit(running_example, relaxed)
        assert second.job_id != first.job_id
        service.run_pending()
        done = service.status(second.job_id)
        assert done.index_cache_hit is True
        assert done.result_cache_hit is False
        assert service.cache.stats.index_hits == 1

    def test_different_gamma_rebuilds_index(self, service, running_example,
                                            paper_params):
        service.submit(running_example, paper_params)
        service.run_pending()
        other = service.submit(
            running_example, paper_params.with_overrides(gamma=0.3)
        )
        service.run_pending()
        assert service.status(other.job_id).index_cache_hit is False


class TestCancellation:
    def test_cancel_queued_job(self, service, running_example, paper_params):
        record = service.submit(running_example, paper_params)
        cancelled = service.cancel(record.job_id)
        assert cancelled.state is JobState.CANCELLED
        # The queue entry is skipped, not executed.
        assert service.run_pending() == 0
        assert service.status(record.job_id).state is JobState.CANCELLED

    def test_cancel_mid_search_stops_via_should_stop(self, tmp_path,
                                                     running_example,
                                                     paper_params):
        service = MiningService(tmp_path / "store")

        def observer(job_id: str, event: str, nodes_expanded: int) -> None:
            if nodes_expanded >= 5:
                service.cancel(job_id)

        service.progress_observer = observer
        record = service.submit(running_example, paper_params)
        service.run_pending()
        done = service.status(record.job_id)
        assert done.state is JobState.CANCELLED
        # The search stopped early: well short of the full traversal.
        full = mine_reg_clusters(
            running_example,
            min_genes=paper_params.min_genes,
            min_conditions=paper_params.min_conditions,
            gamma=paper_params.gamma,
            epsilon=paper_params.epsilon,
        )
        assert 0 < done.progress["nodes_expanded"]
        assert (
            done.progress["nodes_expanded"]
            < full.statistics.nodes_expanded
        )

    def test_cancelled_job_can_be_resubmitted(self, service, running_example,
                                              paper_params):
        record = service.submit(running_example, paper_params)
        service.cancel(record.job_id)
        service.run_pending()
        again = service.submit(running_example, paper_params)
        assert again.state is JobState.SUBMITTED
        service.run_pending()
        assert service.status(again.job_id).state is JobState.DONE


class TestRestart:
    def test_submitted_jobs_survive_restart(self, tmp_path, running_example,
                                            paper_params):
        first = MiningService(tmp_path / "store")
        record = first.submit(running_example, paper_params)
        # Simulate a crash before execution: new service, same directory.
        second = MiningService(tmp_path / "store")
        assert second.run_pending() == 1
        assert second.status(record.job_id).state is JobState.DONE

    def test_background_thread_executes(self, tmp_path, running_example,
                                        paper_params):
        import time

        service = MiningService(tmp_path / "store")
        service.start()
        try:
            record = service.submit(running_example, paper_params)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if service.status(record.job_id).state is JobState.DONE:
                    break
                time.sleep(0.02)
            assert service.status(record.job_id).state is JobState.DONE
        finally:
            service.stop()


class TestFailure:
    def test_missing_matrix_marks_job_failed(self, service, running_example,
                                             paper_params):
        record = service.submit(running_example, paper_params)
        self_path = service._matrix_path(record.matrix_digest)
        self_path.unlink()
        service.run_pending()
        failed = service.status(record.job_id)
        assert failed.state is JobState.FAILED
        assert failed.error is not None
        assert "digest" in failed.error


class TestKernelCache:
    def test_second_submission_reuses_the_kernel(self, service,
                                                 running_example,
                                                 paper_params):
        first = service.submit(running_example, paper_params)
        service.run_pending()
        record = service.status(first.job_id)
        assert record.kernel_cache_hit is False
        assert service.cache.stats.kernel_stores == 1

        # Same matrix and gamma, different epsilon: the result cache
        # cannot answer (new job id) but the kernel artifact must.
        relaxed = paper_params.with_overrides(epsilon=0.3)
        second = service.submit(running_example, relaxed)
        assert second.job_id != first.job_id
        service.run_pending()
        done = service.status(second.job_id)
        assert done.kernel_cache_hit is True
        assert done.result_cache_hit is False
        assert service.cache.stats.kernel_hits == 1
        # The second job attached the cached kernel; nothing was rebuilt
        # or re-stored.
        assert service.cache.stats.kernel_stores == 1

    def test_different_gamma_rebuilds_kernel(self, service, running_example,
                                             paper_params):
        service.submit(running_example, paper_params)
        service.run_pending()
        other = service.submit(
            running_example, paper_params.with_overrides(gamma=0.3)
        )
        service.run_pending()
        assert service.status(other.job_id).kernel_cache_hit is False
        assert service.cache.stats.kernel_stores == 2

    def test_completed_job_records_phase_timers(self, service,
                                                running_example,
                                                paper_params):
        record = service.submit(running_example, paper_params)
        service.run_pending()
        done = service.status(record.job_id)
        assert done.state is JobState.DONE
        assert done.phase_timers is not None
        assert set(done.phase_timers) == {"candidates", "windows", "emit"}
        assert all(v >= 0.0 for v in done.phase_timers.values())


class TestResilienceConfig:
    def test_invalid_job_timeout_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="job_timeout"):
            MiningService(tmp_path / "store", job_timeout=0.0)

    def test_delete_clears_checkpoints_and_fallback(self, tmp_path,
                                                    running_example,
                                                    paper_params):
        from repro.service.resilience import (
            FaultKind,
            FaultPlan,
            FaultSpec,
            RetryPolicy,
        )

        plan = FaultPlan(
            [FaultSpec(kind=FaultKind.CRASH_SHARD, shard=6, times=100)]
        )
        service = MiningService(
            tmp_path / "store",
            retry=RetryPolicy(max_retries=0, backoff_base=0.0),
            fault_plan=plan,
        )
        record = service.submit(running_example, paper_params)
        service.run_pending()
        assert service.status(record.job_id).state is JobState.DEGRADED
        assert service.jobs.load_shards(record.job_id)  # survivors kept
        assert service.result(record.job_id) is not None

        service.delete(record.job_id)
        assert service.jobs.load_shards(record.job_id) == {}
        assert record.job_id not in service._result_fallback
        with pytest.raises(KeyError):
            service.status(record.job_id)
