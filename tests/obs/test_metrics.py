"""Unit tests for repro.obs.metrics: instruments and Prometheus text."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry, render_family


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_render(self, registry):
        counter = registry.counter("repro_events_total", "Events.")
        counter.inc()
        counter.inc(2)
        text = registry.render()
        assert "# HELP repro_events_total Events." in text
        assert "# TYPE repro_events_total counter" in text
        assert "repro_events_total 3" in text
        assert counter.value == 3.0

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("repro_x_total", "X.")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_labels(self, registry):
        counter = registry.counter(
            "repro_jobs_total", "Jobs.", labelnames=("state",)
        )
        counter.labels(state="done").inc()
        counter.labels(state="done").inc()
        counter.labels(state="failed").inc()
        text = registry.render()
        assert 'repro_jobs_total{state="done"} 2' in text
        assert 'repro_jobs_total{state="failed"} 1' in text

    def test_wrong_labelnames_rejected(self, registry):
        counter = registry.counter("repro_l_total", "L.", labelnames=("a",))
        with pytest.raises(ValueError):
            counter.labels(b="x")

    def test_label_values_escaped(self, registry):
        counter = registry.counter("repro_e_total", "E.", labelnames=("p",))
        counter.labels(p='a"b\\c\nd').inc()
        text = registry.render()
        assert 'p="a\\"b\\\\c\\nd"' in text


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("repro_queue", "Queue depth.")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4.0
        assert "repro_queue 4" in registry.render()

    def test_gauge_may_go_negative(self, registry):
        gauge = registry.gauge("repro_g", "G.")
        gauge.dec(3)
        assert gauge.value == -3.0


class TestHistogram:
    def test_cumulative_buckets(self, registry):
        hist = registry.histogram(
            "repro_lat_seconds", "Latency.", buckets=(0.025, 0.05, 5.0)
        )
        for value in (0.02, 3.0, 100.0, 0.025):
            hist.observe(value)
        text = registry.render()
        # le is inclusive: the 0.025 observation lands in the first bucket.
        assert 'repro_lat_seconds_bucket{le="0.025"} 2' in text
        assert 'repro_lat_seconds_bucket{le="0.05"} 2' in text
        assert 'repro_lat_seconds_bucket{le="5"} 3' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_lat_seconds_count 4" in text
        assert hist.count == 4
        assert hist.sum == pytest.approx(103.045)

    def test_labeled_histogram(self, registry):
        hist = registry.histogram(
            "repro_req_seconds", "Latency.", labelnames=("method",),
            buckets=(1.0,),
        )
        hist.labels(method="GET").observe(0.5)
        text = registry.render()
        assert 'repro_req_seconds_bucket{le="1",method="GET"} 1' in text
        assert 'repro_req_seconds_count{method="GET"} 1' in text


class TestRegistry:
    def test_registration_is_idempotent(self, registry):
        first = registry.counter("repro_a_total", "A.")
        second = registry.counter("repro_a_total", "A but reworded.")
        assert first is second

    def test_kind_conflict_rejected(self, registry):
        registry.counter("repro_b", "B.")
        with pytest.raises(ValueError):
            registry.gauge("repro_b", "B.")

    def test_labelname_conflict_rejected(self, registry):
        registry.counter("repro_c_total", "C.", labelnames=("x",))
        with pytest.raises(ValueError):
            registry.counter("repro_c_total", "C.", labelnames=("y",))

    def test_invalid_metric_name_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("0bad-name", "Bad.")

    def test_families_render_sorted_by_name(self, registry):
        registry.counter("repro_zz_total", "Z.").inc()
        registry.counter("repro_aa_total", "A.").inc()
        text = registry.render()
        assert text.index("repro_aa_total") < text.index("repro_zz_total")

    def test_collector_output_included(self, registry):
        registry.register_collector(
            lambda: render_family(
                "repro_custom", "gauge", "Custom.", [({}, 7.0)]
            )
        )
        assert "repro_custom 7" in registry.render()

    def test_broken_collector_does_not_break_render(self, registry):
        def broken() -> str:
            raise RuntimeError("stats source died")

        registry.register_collector(broken)
        registry.counter("repro_ok_total", "OK.").inc()
        assert "repro_ok_total 1" in registry.render()


class TestRenderFamily:
    def test_renders_help_type_and_samples(self):
        text = render_family(
            "repro_things", "counter", "Things.",
            [({"kind": "a"}, 1.0), ({}, 2.5)],
        )
        lines = text.splitlines()
        assert lines[0] == "# HELP repro_things Things."
        assert lines[1] == "# TYPE repro_things counter"
        assert 'repro_things{kind="a"} 1' in lines
        assert "repro_things 2.5" in lines
