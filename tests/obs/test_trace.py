"""Unit tests for repro.obs.trace: spans, sinks, propagation, summary."""

from __future__ import annotations

import io
import json
import pickle

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanContext,
    TraceWorkerConfig,
    Tracer,
    load_spans,
    summarize_trace,
)


class TestSpanBasics:
    def test_span_records_one_json_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        with tracer.span("work", attributes={"k": 1}) as span:
            span.set_attribute("m", 2)
        tracer.close()
        (payload,) = [json.loads(line) for line in path.read_text().splitlines()]
        assert payload["name"] == "work"
        assert payload["attributes"] == {"k": 1, "m": 2}
        assert payload["trace_id"] == tracer.trace_id
        assert payload["parent_id"] is None
        assert payload["duration_s"] >= 0.0

    def test_nesting_links_parent_ids(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        with tracer.span("outer") as outer:
            with tracer.span("inner", parent=outer):
                pass
        tracer.close()
        spans = {s["name"]: s for s in load_spans(path)}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["inner"]["trace_id"] == spans["outer"]["trace_id"]

    def test_parenting_on_a_context(self, tmp_path):
        tracer = Tracer(tmp_path / "t.jsonl")
        root = tracer.span("root")
        child = tracer.span("child", parent=root.context)
        assert child.parent_id == root.span_id

    def test_exception_marks_outcome_failed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        tracer.close()
        (span,) = load_spans(path)
        assert span["attributes"]["outcome"] == "failed"
        assert "RuntimeError: boom" in span["attributes"]["error"]

    def test_end_is_idempotent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(path)
        span = tracer.span("once")
        span.end()
        first = span.duration_s
        span.end()
        tracer.close()
        assert span.duration_s == first
        assert len(load_spans(path)) == 1

    def test_stream_sink(self):
        stream = io.StringIO()
        tracer = Tracer(stream)
        tracer.span("s").end()
        payload = json.loads(stream.getvalue())
        assert payload["name"] == "s"
        # Stream sinks cannot cross processes.
        assert tracer.worker_config(SpanContext("a", "b")) is None

    def test_overwrite_truncates_previous_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        first = Tracer(path)
        first.span("old").end()
        first.close()
        second = Tracer(path, overwrite=True)
        second.span("new").end()
        second.close()
        assert [s["name"] for s in load_spans(path)] == ["new"]


class TestPropagation:
    def test_span_context_pickles(self):
        ctx = SpanContext(trace_id="ab" * 8, span_id="cd" * 8)
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_worker_config_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        parent_tracer = Tracer(path)
        root = parent_tracer.span("root")
        config = parent_tracer.worker_config(root)
        config = pickle.loads(pickle.dumps(config))
        assert isinstance(config, TraceWorkerConfig)
        worker_tracer = config.tracer()
        with worker_tracer.span("child", parent=config.parent):
            pass
        worker_tracer.close()
        root.end()
        parent_tracer.close()
        spans = {s["name"]: s for s in load_spans(path)}
        assert spans["child"]["trace_id"] == spans["root"]["trace_id"]
        assert spans["child"]["parent_id"] == spans["root"]["span_id"]


class TestNullTracer:
    def test_null_tracer_is_inert(self, tmp_path):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.path is None
        with NULL_TRACER.span("anything", attributes={"k": 1}) as span:
            span.set_attribute("m", 2)
            span.set_attributes({"n": 3})
        assert NULL_TRACER.worker_config(span.context) is None
        NULL_TRACER.close()

    def test_null_span_survives_exceptions_silently(self):
        tracer = NullTracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")

    def test_real_tracer_is_enabled(self, tmp_path):
        assert Tracer(tmp_path / "t.jsonl").enabled is True


class TestLoadSpans:
    def test_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps({"span_id": "x", "trace_id": "t", "name": "ok",
                           "parent_id": None, "duration_s": 0.1,
                           "attributes": {}})
        path.write_text(good + "\n{torn line\n\n42\n")
        spans = load_spans(path)
        assert [s["name"] for s in spans] == ["ok"]


class TestSummarize:
    def _span(self, **kw):
        base = {"trace_id": "t1", "span_id": "s", "parent_id": None,
                "name": "job", "duration_s": 1.0, "attributes": {}}
        base.update(kw)
        return base

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError, match="no spans"):
            summarize_trace([])

    def test_renders_root_phases_and_shard_table(self):
        spans = [
            self._span(span_id="r", attributes={"job_id": "job-1"}),
            self._span(
                span_id="a", parent_id="r", name="shard", duration_s=0.5,
                attributes={"shard": 0, "attempt": 0, "outcome": "ok",
                            "nodes_expanded": 10, "clusters_emitted": 2,
                            "time_candidates": 0.1, "time_windows": 0.3,
                            "time_emit": 0.1},
            ),
            self._span(
                span_id="b", parent_id="r", name="shard", duration_s=0.2,
                attributes={"shard": 1, "attempt": 0, "outcome": "failed"},
            ),
        ]
        rendered = summarize_trace(spans)
        assert "trace t1: 3 span(s)" in rendered
        assert "root: job" in rendered
        assert "job job-1" in rendered
        assert "candidates 0.100s" in rendered
        lines = rendered.splitlines()
        shard0 = next(l for l in lines if l.strip().startswith("0 "))
        assert "ok" in shard0 and "10" in shard0
        shard1 = next(l for l in lines if l.strip().startswith("1 "))
        assert "lost" in shard1

    def test_resumed_shards_render_as_resumed(self):
        spans = [
            self._span(span_id="r"),
            self._span(
                span_id="a", parent_id="r", name="shard.resumed",
                duration_s=0.0,
                attributes={"shard": 3, "outcome": "resumed",
                            "nodes_expanded": 7, "clusters_emitted": 1},
            ),
        ]
        rendered = summarize_trace(spans)
        assert "resumed" in rendered

    def test_orphan_spans_are_reported(self):
        spans = [
            self._span(span_id="a", parent_id="gone", name="shard",
                       attributes={"shard": 0, "attempt": 0}),
        ]
        assert "missing parents" in summarize_trace(spans)

    def test_multiple_traces_summarized_separately(self):
        spans = [
            self._span(trace_id="t1", span_id="a"),
            self._span(trace_id="t2", span_id="b"),
        ]
        rendered = summarize_trace(spans)
        assert "trace t1" in rendered and "trace t2" in rendered
