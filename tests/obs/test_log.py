"""Unit tests for repro.obs.log: JSON/text formats, configuration."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.log import (
    ROOT_LOGGER_NAME,
    configure_logging,
    get_logger,
    reset_logging,
)


@pytest.fixture(autouse=True)
def clean_logging():
    """Leave the process-wide repro logger as we found it."""
    yield
    reset_logging()


def _configured(fmt="json", level="info"):
    stream = io.StringIO()
    configure_logging(stream=stream, fmt=fmt, level=level)
    return stream


class TestJsonFormat:
    def test_event_and_fields(self):
        stream = _configured()
        get_logger("repro.service.daemon").info(
            "job.state", job_id="job-1", state="running"
        )
        payload = json.loads(stream.getvalue())
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.service.daemon"
        assert payload["event"] == "job.state"
        assert payload["job_id"] == "job-1"
        assert payload["state"] == "running"
        assert payload["ts"].endswith("Z") and "T" in payload["ts"]

    def test_reserved_keys_not_clobbered(self):
        stream = _configured()
        get_logger("repro.x").info("evt", level="sneaky", logger="fake")
        payload = json.loads(stream.getvalue())
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.x"
        assert payload["event"] == "evt"

    def test_exc_info_attached(self):
        stream = _configured()
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            get_logger("repro.x").error("failed", exc_info=True)
        payload = json.loads(stream.getvalue())
        assert "RuntimeError: boom" in payload["exc"]

    def test_non_serializable_fields_stringified(self):
        stream = _configured()
        get_logger("repro.x").info("evt", path=object())
        assert json.loads(stream.getvalue())["event"] == "evt"


class TestTextFormat:
    def test_single_line_key_values(self):
        stream = _configured(fmt="text")
        get_logger("repro.service.http").info(
            "http.access", method="GET", status=200
        )
        line = stream.getvalue().strip()
        assert "info repro.service.http http.access" in line
        assert "method=GET" in line and "status=200" in line


class TestConfiguration:
    def test_silent_until_configured(self, capsys):
        get_logger("repro.quiet").warning("nobody.listens")
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""

    def test_level_filtering(self):
        stream = _configured(level="warning")
        log = get_logger("repro.x")
        log.info("dropped")
        log.warning("kept")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "kept"

    def test_reconfigure_replaces_handler(self):
        first = io.StringIO()
        second = io.StringIO()
        configure_logging(stream=first)
        configure_logging(stream=second)
        get_logger("repro.x").info("once")
        assert first.getvalue() == ""
        assert "once" in second.getvalue()

    def test_reset_removes_only_our_handler(self):
        logger = logging.getLogger(ROOT_LOGGER_NAME)
        foreign = logging.NullHandler()
        logger.addHandler(foreign)
        try:
            configure_logging(stream=io.StringIO())
            reset_logging()
            assert foreign in logger.handlers
            assert all(
                not getattr(h, "_repro_obs_handler", False)
                for h in logger.handlers
            )
        finally:
            logger.removeHandler(foreign)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(stream=io.StringIO(), level="loud")

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown log format"):
            configure_logging(stream=io.StringIO(), fmt="xml")

    def test_get_logger_prefixes_repro(self):
        assert get_logger("service.http").name == "repro.service.http"
        assert get_logger("repro.core").name == "repro.core"
