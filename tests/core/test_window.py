"""Unit and property tests for the coherence sliding window."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.window import (
    coherent_gene_windows,
    maximal_coherent_windows,
    segmented_maximal_windows,
)


class TestMaximalWindows:
    def test_single_window(self):
        assert maximal_coherent_windows(
            np.array([0.0, 0.1, 0.2]), 0.5, 1
        ) == [(0, 2)]

    def test_two_disjoint_windows(self):
        scores = np.array([0.0, 0.1, 5.0, 5.05])
        assert maximal_coherent_windows(scores, 0.2, 1) == [(0, 1), (2, 3)]

    def test_overlapping_windows(self):
        scores = np.array([0.0, 0.5, 1.0, 1.5])
        assert maximal_coherent_windows(scores, 1.0, 1) == [
            (0, 2),
            (1, 3),
        ]

    def test_min_length_filters(self):
        scores = np.array([0.0, 0.1, 5.0])
        assert maximal_coherent_windows(scores, 0.2, 2) == [(0, 1)]

    def test_empty_input(self):
        assert maximal_coherent_windows(np.array([]), 0.5, 1) == []

    def test_epsilon_zero_groups_equal_scores(self):
        scores = np.array([1.0, 1.0, 2.0, 2.0, 2.0])
        assert maximal_coherent_windows(scores, 0.0, 2) == [(0, 1), (2, 4)]

    def test_unsorted_raises(self):
        with pytest.raises(ValueError, match="sorted"):
            maximal_coherent_windows(np.array([1.0, 0.0]), 0.5, 1)

    def test_bad_parameters(self):
        with pytest.raises(ValueError, match="min_length"):
            maximal_coherent_windows(np.array([1.0]), 0.5, 0)
        with pytest.raises(ValueError, match="epsilon"):
            maximal_coherent_windows(np.array([1.0]), -0.5, 1)

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False,
                      width=32),
            max_size=30,
        ),
        st.floats(min_value=0, max_value=50),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=200, deadline=None)
    def test_window_properties(self, values, epsilon, min_length):
        scores = np.sort(np.asarray(values, dtype=np.float64))
        windows = maximal_coherent_windows(scores, epsilon, min_length)
        covered = set()
        for start, end in windows:
            assert end - start + 1 >= min_length
            assert scores[end] - scores[start] <= epsilon
            # maximality in both directions
            if start > 0:
                assert scores[end] - scores[start - 1] > epsilon
            if end < len(scores) - 1:
                assert scores[end + 1] - scores[start] > epsilon
            covered.update(range(start, end + 1))
        # completeness: any element not covered belongs only to windows
        # shorter than min_length
        for index in set(range(len(scores))) - covered:
            lo = index
            while lo > 0 and scores[index] - scores[lo - 1] <= epsilon:
                lo -= 1
            hi = index
            while (
                hi < len(scores) - 1
                and scores[hi + 1] - scores[lo] <= epsilon
            ):
                hi += 1
            # the largest window this element fits in is too short
            assert hi - lo + 1 < min_length


class TestGeneWindows:
    def test_partitions_by_score(self):
        genes = np.array([10, 11, 12, 13])
        scores = np.array([5.0, 0.0, 5.1, 0.2])
        windows = coherent_gene_windows(genes, scores, 0.3, 2)
        assert [w.tolist() for w in windows] == [[11, 13], [10, 12]]

    def test_non_finite_scores_dropped(self):
        genes = np.array([1, 2, 3])
        scores = np.array([np.inf, 1.0, 1.1])
        windows = coherent_gene_windows(genes, scores, 0.5, 2)
        assert [w.tolist() for w in windows] == [[2, 3]]

    def test_deterministic_tie_order(self):
        genes = np.array([9, 3, 7])
        scores = np.array([1.0, 1.0, 1.0])
        windows = coherent_gene_windows(genes, scores, 0.0, 1)
        assert windows[0].tolist() == [3, 7, 9]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="parallel"):
            coherent_gene_windows(np.array([1]), np.array([1.0, 2.0]), 0.1, 1)


class TestSegmentedWindows:
    """segmented_maximal_windows == per-run maximal_coherent_windows."""

    @staticmethod
    def _flatten(runs):
        """Concatenate sorted runs into (scores, seg_ids, seg_ends)."""
        scores = np.concatenate(runs) if runs else np.empty(0)
        seg_ids = np.concatenate(
            [np.full(len(run), i, dtype=np.intp) for i, run in enumerate(runs)]
        ) if runs else np.empty(0, dtype=np.intp)
        ends, offset = [], 0
        for run in runs:
            offset += len(run)
            ends.append(np.full(len(run), offset - 1, dtype=np.intp))
        seg_ends = np.concatenate(ends) if runs else np.empty(0, dtype=np.intp)
        return scores.astype(np.float64), seg_ids, seg_ends

    @staticmethod
    def _reference(runs, epsilon, min_length):
        expected, offset = [], 0
        for run in runs:
            for start, end in maximal_coherent_windows(
                np.asarray(run, dtype=np.float64), epsilon, min_length
            ):
                expected.append((start + offset, end + offset))
            offset += len(run)
        return expected

    def _check(self, runs, epsilon, min_length):
        scores, seg_ids, seg_ends = self._flatten(
            [np.sort(np.asarray(run, dtype=np.float64)) for run in runs]
        )
        starts, ends = segmented_maximal_windows(
            scores, seg_ids, seg_ends, epsilon, min_length
        )
        got = list(zip(starts.tolist(), ends.tolist()))
        assert got == self._reference(
            [np.sort(np.asarray(run, dtype=np.float64)) for run in runs],
            epsilon,
            min_length,
        )

    def test_empty(self):
        starts, ends = segmented_maximal_windows(
            np.empty(0), np.empty(0, dtype=np.intp),
            np.empty(0, dtype=np.intp), 0.5, 1
        )
        assert starts.size == 0 and ends.size == 0

    def test_single_run_matches_unsegmented(self):
        self._check([[0.0, 0.1, 0.2, 5.0, 5.05]], 0.2, 1)

    def test_windows_never_cross_run_boundaries(self):
        # Identical scores in adjacent runs must stay separate windows.
        self._check([[1.0, 1.1], [1.0, 1.1]], 0.5, 1)

    def test_maximality_resets_at_run_starts(self):
        # Run 2 starts with a window whose end does not exceed run 1's
        # last end in flat coordinates; the per-run reset must keep it.
        self._check([[0.0, 0.1, 0.2, 0.3], [0.0, 0.1]], 0.5, 1)

    def test_min_length_applies_per_run(self):
        self._check([[0.0, 0.1], [3.0, 3.05, 3.1], [9.0]], 0.2, 2)

    def test_mixed_scales_between_runs(self):
        self._check(
            [[-1e6, -1e6 + 0.005], [0.0, 0.004, 0.009], [1e6]], 0.01, 1
        )

    @given(
        st.lists(
            st.lists(
                st.floats(
                    min_value=-1e3, max_value=1e3, allow_nan=False, width=32
                ),
                min_size=1,
                max_size=12,
            ),
            min_size=1,
            max_size=6,
        ),
        st.floats(min_value=0, max_value=100),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_per_run_reference(self, runs, epsilon, min_length):
        self._check(runs, epsilon, min_length)
