"""Global invariants of mining results on realistic synthetic data."""

from __future__ import annotations

import pytest

from repro.core.chain import invert_chain
from repro.core.cluster import RegCluster
from repro.core.miner import MiningParameters, RegClusterMiner
from repro.core.validate import validation_errors
from repro.datasets.synthetic import make_synthetic_dataset


@pytest.fixture(scope="module", params=[0, 1, 2])
def mining_run(request):
    data = make_synthetic_dataset(
        n_genes=200,
        n_conditions=16,
        n_clusters=3,
        seed=request.param,
        gene_fraction=0.05,
    )
    params = MiningParameters(
        min_genes=6, min_conditions=5, gamma=0.1, epsilon=0.05
    )
    result = RegClusterMiner(data.matrix, params).mine()
    return data, params, result


class TestResultInvariants:
    def test_every_cluster_valid(self, mining_run):
        data, params, result = mining_run
        for cluster in result.clusters:
            assert validation_errors(data.matrix, cluster, params) == []

    def test_no_duplicates(self, mining_run):
        __, __, result = mining_run
        assert len(result.clusters) == len(set(result.clusters))

    def test_no_cluster_reported_in_both_orientations(self, mining_run):
        """Each cluster appears once: its inverted twin (chain reversed,
        p/n swapped) must never also be in the output."""
        __, __, result = mining_run
        emitted = set(result.clusters)
        for cluster in result.clusters:
            twin = RegCluster(
                chain=invert_chain(cluster.chain),
                p_members=cluster.n_members,
                n_members=cluster.p_members,
            )
            assert twin not in emitted

    def test_shapes_respect_parameters(self, mining_run):
        __, params, result = mining_run
        for cluster in result.clusters:
            assert cluster.n_genes >= params.min_genes
            assert cluster.n_conditions >= params.min_conditions
            assert len(cluster.p_members) >= len(cluster.n_members)

    def test_statistics_consistency(self, mining_run):
        __, __, result = mining_run
        stats = result.statistics
        assert stats.clusters_emitted == len(result.clusters)
        assert stats.nodes_expanded >= stats.max_depth
        assert stats.max_depth >= max(
            (c.n_conditions for c in result.clusters), default=0
        )

    def test_p_members_ascend_n_members_descend(self, mining_run):
        data, __, result = mining_run
        values = data.matrix.values
        for cluster in result.clusters:
            chain = list(cluster.chain)
            for gene in cluster.p_members:
                profile = values[gene][chain]
                assert all(a < b for a, b in zip(profile, profile[1:]))
            for gene in cluster.n_members:
                profile = values[gene][chain]
                assert all(a > b for a, b in zip(profile, profile[1:]))
