"""Differential testing: optimized miner vs brute-force reference oracle.

The strongest correctness evidence in the suite: on random small matrices
the RWave-indexed, pruned, vectorized miner must produce *exactly* the
same cluster set as the naive reference enumerator, and toggling each
lossless pruning individually must never change the output.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.miner import MiningParameters, PruningConfig, RegClusterMiner
from repro.core.reference import reference_mine, reference_mine_list
from repro.core.validate import is_valid_reg_cluster
from repro.matrix.expression import ExpressionMatrix

matrices = st.builds(
    lambda values: ExpressionMatrix(np.asarray(values, dtype=float)),
    st.lists(
        st.lists(
            st.integers(min_value=0, max_value=20).map(lambda v: v / 2.0),
            min_size=4,
            max_size=5,
        ),
        min_size=3,
        max_size=7,
    ).filter(lambda rows: len({len(r) for r in rows}) == 1),
)

parameter_sets = st.builds(
    MiningParameters,
    min_genes=st.integers(min_value=2, max_value=3),
    min_conditions=st.integers(min_value=2, max_value=4),
    gamma=st.sampled_from([0.0, 0.1, 0.25]),
    epsilon=st.sampled_from([0.0, 0.1, 0.5, 2.0]),
)


@given(matrices, parameter_sets)
@settings(max_examples=120, deadline=None)
def test_miner_equals_reference(matrix, params):
    fast = set(RegClusterMiner(matrix, params).mine().clusters)
    slow = reference_mine(matrix, params)
    assert fast == slow


@given(matrices, parameter_sets)
@settings(max_examples=60, deadline=None)
def test_prunings_are_lossless(matrix, params):
    expected = set(RegClusterMiner(matrix, params).mine().clusters)
    for disabled in ["min_genes", "reachability", "p_majority", "redundancy"]:
        config = PruningConfig(**{disabled: False})
        got = set(
            RegClusterMiner(matrix, params, prunings=config).mine().clusters
        )
        assert got == expected, f"disabling {disabled} changed the output"
    none = set(
        RegClusterMiner(matrix, params, prunings=PruningConfig.none())
        .mine()
        .clusters
    )
    assert none == expected


@given(matrices, parameter_sets)
@settings(max_examples=60, deadline=None)
def test_every_output_cluster_is_valid(matrix, params):
    result = RegClusterMiner(matrix, params).mine()
    for cluster in result.clusters:
        assert is_valid_reg_cluster(matrix, cluster, params)


@given(matrices, parameter_sets)
@settings(max_examples=30, deadline=None)
def test_no_duplicate_clusters(matrix, params):
    clusters = RegClusterMiner(matrix, params).mine().clusters
    assert len(clusters) == len(set(clusters))


def test_reference_list_is_sorted_and_deterministic():
    rng = np.random.default_rng(0)
    matrix = ExpressionMatrix(rng.uniform(0, 10, size=(5, 4)))
    params = MiningParameters(
        min_genes=2, min_conditions=2, gamma=0.1, epsilon=0.5
    )
    once = reference_mine_list(matrix, params)
    twice = reference_mine_list(matrix, params)
    assert list(once) == list(twice)
    chains = [c.chain for c in once]
    assert chains == sorted(chains)


@pytest.mark.parametrize("seed", range(5))
def test_agreement_on_matrices_with_planted_structure(seed):
    """Random matrices rarely contain big clusters; plant one to make the
    differential test exercise deep chains and the window logic."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(0, 10, size=(6, 5))
    base = np.linspace(0, 12, 5)
    values[0] = base
    values[1] = 1.5 * base + 2
    values[2] = -0.5 * base + 11
    matrix = ExpressionMatrix(values)
    params = MiningParameters(
        min_genes=2, min_conditions=4, gamma=0.15, epsilon=0.05
    )
    fast = set(RegClusterMiner(matrix, params).mine().clusters)
    slow = reference_mine(matrix, params)
    assert fast == slow
    assert any(cluster.n_members for cluster in fast)


@given(matrices, parameter_sets,
       st.sampled_from(["closest_pair_average", "normalized_std",
                        "mean_fraction", "constant"]),
       st.floats(min_value=0.1, max_value=2.0))
@settings(max_examples=40, deadline=None)
def test_miner_equals_reference_with_custom_thresholds(
    matrix, params, strategy_name, scale
):
    """The differential guarantee holds under every threshold strategy."""
    from repro.core.thresholds import resolve_strategy

    thresholds = resolve_strategy(strategy_name)(matrix, scale)
    fast = set(
        RegClusterMiner(matrix, params, thresholds=thresholds)
        .mine()
        .clusters
    )
    slow = reference_mine(matrix, params, thresholds=thresholds)
    assert fast == slow
