"""Unit tests for the independent Definition 3.2 validator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cluster import RegCluster
from repro.core.params import MiningParameters
from repro.core.validate import (
    check_chain,
    is_valid_reg_cluster,
    validation_errors,
)
from repro.matrix.expression import ExpressionMatrix


@pytest.fixture
def paper_cluster(running_example):
    chain = tuple(
        running_example.condition_indices(["c7", "c9", "c5", "c1", "c3"])
    )
    return RegCluster(chain=chain, p_members=(0, 2), n_members=(1,))


class TestValidClusters:
    def test_paper_cluster_is_valid(
        self, running_example, paper_cluster, paper_params
    ):
        assert validation_errors(
            running_example, paper_cluster, paper_params
        ) == []
        assert is_valid_reg_cluster(
            running_example, paper_cluster, paper_params
        )


class TestViolations:
    def test_too_few_conditions(self, running_example, paper_params):
        chain = tuple(running_example.condition_indices(["c7", "c3"]))
        cluster = RegCluster(chain=chain, p_members=(0, 1, 2))
        errors = validation_errors(running_example, cluster, paper_params)
        assert any("fewer than MinC" in e for e in errors)

    def test_too_few_genes(self, running_example, paper_params):
        chain = tuple(
            running_example.condition_indices(["c7", "c9", "c5", "c1", "c3"])
        )
        cluster = RegCluster(chain=chain, p_members=(0, 2))
        errors = validation_errors(running_example, cluster, paper_params)
        assert any("fewer than MinG" in e for e in errors)

    def test_broken_regulation_detected(self, running_example, paper_params):
        """Figure 4: on {c2, c4, c8, c10} the g2 steps are unregulated."""
        chain = tuple(
            running_example.condition_indices(["c2", "c10", "c8", "c4"])
        )
        cluster = RegCluster(chain=chain, p_members=(0, 1, 2))
        params = paper_params.with_overrides(min_conditions=4)
        errors = validation_errors(running_example, cluster, params)
        assert any("p-member gene 1" in e for e in errors)

    def test_pairwise_not_just_adjacent(self, paper_params):
        """A chain whose adjacent steps pass but a wider pair fails cannot
        occur (steps accumulate) — but a *descending* member placed in
        p_members must fail every pair."""
        m = ExpressionMatrix([[10.0, 5.0, 0.0], [0.0, 5.0, 10.0]])
        cluster = RegCluster(chain=(0, 1, 2), p_members=(0, 1))
        params = MiningParameters(
            min_genes=2, min_conditions=3, gamma=0.1, epsilon=1.0
        )
        errors = validation_errors(m, cluster, params)
        assert any("p-member gene 0" in e for e in errors)

    def test_broken_coherence_detected(self):
        base = np.array([0.0, 3.0, 6.0])
        skew = np.array([0.0, 3.0, 20.0])
        m = ExpressionMatrix([base, skew])
        cluster = RegCluster(chain=(0, 1, 2), p_members=(0, 1))
        params = MiningParameters(
            min_genes=2, min_conditions=3, gamma=0.1, epsilon=0.5
        )
        errors = validation_errors(m, cluster, params)
        assert any("H spread" in e for e in errors)

    def test_wrong_orientation_detected(self, running_example, paper_params):
        """Storing the inverted chain (n-majority) is flagged."""
        chain = tuple(
            running_example.condition_indices(["c3", "c1", "c5", "c9", "c7"])
        )
        cluster = RegCluster(chain=chain, p_members=(1,), n_members=(0, 2))
        errors = validation_errors(running_example, cluster, paper_params)
        assert any("not representative" in e for e in errors)

    def test_n_member_violation_detected(self, running_example, paper_params):
        chain = tuple(
            running_example.condition_indices(["c7", "c9", "c5", "c1", "c3"])
        )
        # put an ascending gene into the n-members
        cluster = RegCluster(chain=chain, p_members=(0,), n_members=(1, 2))
        errors = validation_errors(running_example, cluster, paper_params)
        assert any("n-member gene 2" in e for e in errors)

    def test_single_condition_chain_rejected(self, running_example, paper_params):
        cluster = RegCluster(chain=(0,), p_members=(0, 1, 2))
        errors = validation_errors(running_example, cluster, paper_params)
        assert any("at least two conditions" in e for e in errors)


class TestCheckChain:
    def test_classifies_members(self, running_example):
        chain = ["c7", "c9", "c5", "c1", "c3"]
        assert check_chain(running_example, "g1", chain, 0.15) == "p"
        assert check_chain(running_example, "g2", chain, 0.15) == "n"

    def test_classifies_non_member(self, running_example):
        assert (
            check_chain(running_example, "g2", ["c8", "c4", "c6"], 0.15)
            == "none"
        )
