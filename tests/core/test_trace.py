"""Unit tests for search tracing (the Figure 6 enumeration tree)."""

from __future__ import annotations

import pytest

from repro.core.miner import RegClusterMiner
from repro.core.trace import SearchTrace


@pytest.fixture
def traced(running_example, paper_params):
    tracer = SearchTrace()
    result = RegClusterMiner(
        running_example, paper_params, tracer=tracer
    ).mine()
    return tracer, result


def chain_ids(names, matrix):
    return tuple(matrix.condition_index(n) for n in names)


class TestFigure6Tree:
    """Pins the enumeration tree of the paper's Figure 6."""

    def test_validated_chain(self, traced, running_example):
        tracer, __ = traced
        validated = tracer.validated_chains()
        assert validated == [
            chain_ids(["c7", "c9", "c5", "c1", "c3"], running_example)
        ]

    def test_level1_survivors(self, traced, running_example):
        """Only c2, c3 and c7 reach level 1; the paper prunes the rest."""
        tracer, __ = traced
        expanded_level1 = {
            chain[0]
            for chain in tracer.chains()
            if len(chain) == 1 and "expanded" in tracer.events(chain)
        }
        assert expanded_level1 == {
            running_example.condition_index("c2"),
            running_example.condition_index("c7"),
        }
        # c3 is visited but pruned by (3a): its only ascending gene is g2
        c3 = chain_ids(["c3"], running_example)
        assert tracer.events(c3) == ("pruned_p_majority",)

    def test_c2_subtree_matches_paper(self, traced, running_example):
        """Paper: candidates of c2 are c1, c9, c10; c2c1 and c2c9 are
        pruned, only c2c10 extends, whose children c5 and c8 both fail."""
        tracer, __ = traced
        assert "pruned" in tracer.events(
            chain_ids(["c2", "c1"], running_example)
        )[0]
        assert tracer.events(
            chain_ids(["c2", "c9"], running_example)
        ) == ("pruned_min_genes",)
        assert "expanded" in tracer.events(
            chain_ids(["c2", "c10"], running_example)
        )
        # the paper prunes c2c10c5 by coherence (H(2,...) = 2 is the
        # outlier) and c2c10c8 during the same window step
        assert tracer.events(
            chain_ids(["c2", "c10", "c5"], running_example)
        ) == ("pruned_coherence",)
        assert tracer.events(
            chain_ids(["c2", "c10", "c8"], running_example)
        ) == ("pruned_coherence",)

    def test_c7_path_expands_to_validated_chain(self, traced, running_example):
        tracer, __ = traced
        for prefix_len in range(1, 6):
            prefix = chain_ids(
                ["c7", "c9", "c5", "c1", "c3"][:prefix_len], running_example
            )
            assert "expanded" in tracer.events(prefix)

    def test_c7c10_pruned_by_min_genes(self, traced, running_example):
        """Paper: 'c7c10 is pruned with strategy (1)'."""
        tracer, __ = traced
        assert tracer.events(
            chain_ids(["c7", "c10"], running_example)
        ) == ("pruned_min_genes",)


class TestTraceMechanics:
    def test_rendering(self, traced, running_example):
        tracer, __ = traced
        text = tracer.render(running_example.condition_names)
        assert text.startswith("(root)")
        assert "VALIDATED reg-cluster" in text
        assert "pruned (4)" in text
        assert "c7 c9 c5 c1 c3" in text

    def test_render_default_names(self, traced):
        tracer, __ = traced
        assert "c7 c9 c5 c1 c3" in tracer.render()

    def test_pruned_chain_query(self, traced):
        tracer, __ = traced
        assert tracer.pruned_chains()  # something was pruned
        assert set(tracer.pruned_chains("coherence")) <= set(
            tracer.pruned_chains()
        )

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event"):
            SearchTrace().record((0,), "exploded")

    def test_tracing_does_not_change_output(
        self, running_example, paper_params
    ):
        plain = RegClusterMiner(running_example, paper_params).mine()
        traced_result = RegClusterMiner(
            running_example, paper_params, tracer=SearchTrace()
        ).mine()
        assert plain.clusters == traced_result.clusters

    def test_repr(self, traced):
        tracer, __ = traced
        assert "validated=1" in repr(tracer)
