"""Unit tests for the regulation measurement (Eq. 3 / Eq. 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.regulation import (
    Regulation,
    gene_thresholds,
    regulation,
    regulation_matrix,
)
from repro.matrix.expression import ExpressionMatrix


class TestThresholds:
    def test_paper_values(self, running_example):
        """gamma = 0.15 gives gamma_1 = gamma_2 = 4.5 and gamma_3 = 1.8."""
        thresholds = gene_thresholds(running_example, 0.15)
        assert thresholds.tolist() == pytest.approx([4.5, 4.5, 1.8])

    def test_zero_gamma(self, running_example):
        assert gene_thresholds(running_example, 0.0).tolist() == [0, 0, 0]

    def test_constant_gene_threshold_zero(self):
        m = ExpressionMatrix([[3.0, 3.0, 3.0]])
        assert gene_thresholds(m, 0.5).tolist() == [0.0]

    def test_invalid_gamma(self, running_example):
        with pytest.raises(ValueError, match="gamma"):
            gene_thresholds(running_example, 1.2)


class TestRegulation:
    def test_up_regulated(self, running_example):
        # g1: d(c3) = 15, d(c7) = -15, difference 30 > 4.5
        assert (
            regulation(running_example, "g1", "c3", "c7", 0.15)
            is Regulation.UP
        )

    def test_down_regulated(self, running_example):
        assert (
            regulation(running_example, "g1", "c7", "c3", 0.15)
            is Regulation.DOWN
        )

    def test_not_regulated(self, running_example):
        # g1: d(c1) = 10, d(c4) = 10.5, difference 0.5 < 4.5
        assert (
            regulation(running_example, "g1", "c4", "c1", 0.15)
            is Regulation.NONE
        )

    def test_strict_inequality_at_threshold(self):
        m = ExpressionMatrix([[0.0, 5.0, 10.0]])  # range 10
        # gamma = 0.5 -> threshold 5; difference exactly 5 is NOT regulated
        assert regulation(m, 0, 1, 0, 0.5) is Regulation.NONE
        assert regulation(m, 0, 2, 0, 0.5) is Regulation.UP

    def test_threshold_override(self, running_example):
        assert (
            regulation(running_example, "g1", "c4", "c1", 0.15, threshold=0.2)
            is Regulation.UP
        )

    def test_inverted(self):
        assert Regulation.UP.inverted() is Regulation.DOWN
        assert Regulation.DOWN.inverted() is Regulation.UP
        assert Regulation.NONE.inverted() is Regulation.NONE


class TestRegulationMatrix:
    def test_antisymmetric(self, running_example):
        table = regulation_matrix(running_example, "g2", 0.15)
        assert np.array_equal(table, -table.T)

    def test_matches_scalar_calls(self, running_example):
        table = regulation_matrix(running_example, "g3", 0.15)
        for a in range(10):
            for b in range(10):
                expected = regulation(running_example, "g3", a, b, 0.15)
                mapping = {
                    Regulation.UP: 1,
                    Regulation.DOWN: -1,
                    Regulation.NONE: 0,
                }
                assert table[a, b] == mapping[expected]

    def test_diagonal_zero(self, running_example):
        table = regulation_matrix(running_example, "g1", 0.15)
        assert np.all(np.diag(table) == 0)
