"""Unit tests for the reg-cluster miner on crafted inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.miner import (
    MiningParameters,
    PruningConfig,
    RegClusterMiner,
    mine_reg_clusters,
)
from repro.core.validate import is_valid_reg_cluster
from repro.matrix.expression import ExpressionMatrix


def affine_family_matrix():
    """Five genes: four affine transforms of a base on c1..c5 + noise gene.

    The base pattern steps are each > 20% of every member's range, so the
    family forms a perfect reg-cluster at gamma <= 0.2, epsilon = 0.
    """
    base = np.array([0.0, 3.0, 6.0, 9.0, 12.0])
    rows = [
        base,  # g1 (identity)
        2.0 * base + 1.0,  # g2 (shifting and scaling)
        base + 4.0,  # g3 (pure shifting)
        -1.0 * base + 12.0,  # g4 (negative correlation)
        np.array([5.0, 5.1, 4.9, 5.2, 5.0]),  # g5 (flat noise)
    ]
    return ExpressionMatrix(np.asarray(rows))


class TestCraftedPatterns:
    def test_family_found_with_negative_member(self):
        m = affine_family_matrix()
        result = mine_reg_clusters(
            m, min_genes=4, min_conditions=5, gamma=0.15, epsilon=0.01
        )
        assert len(result) == 1
        cluster = result[0]
        assert cluster.p_members == (0, 1, 2)
        assert cluster.n_members == (3,)
        assert cluster.chain == (0, 1, 2, 3, 4)
        assert is_valid_reg_cluster(m, cluster, result.parameters)

    def test_pure_shifting_special_case(self):
        base = np.array([0.0, 5.0, 10.0])
        m = ExpressionMatrix([base, base + 3.0, base - 2.0])
        result = mine_reg_clusters(
            m, min_genes=3, min_conditions=3, gamma=0.3, epsilon=0.0
        )
        assert len(result) == 1
        assert result[0].n_genes == 3

    def test_pure_scaling_special_case(self):
        base = np.array([1.0, 5.0, 10.0])
        m = ExpressionMatrix([base, 3.0 * base, 0.5 * base])
        result = mine_reg_clusters(
            m, min_genes=3, min_conditions=3, gamma=0.3, epsilon=0.0
        )
        assert len(result) == 1

    def test_regulation_threshold_rejects_small_swings(self):
        """Genes covarying within a small band are filtered by gamma."""
        base = np.array([0.0, 0.4, 0.8, 10.0])  # big range, tiny steps
        m = ExpressionMatrix([base, base, base])
        result = mine_reg_clusters(
            m, min_genes=3, min_conditions=4, gamma=0.15, epsilon=0.0
        )
        assert len(result) == 0  # c1->c2->c3 steps are below 15% of range

    def test_epsilon_zero_requires_exact_proportions(self):
        base = np.array([0.0, 3.0, 6.0])
        near = np.array([0.0, 3.0, 6.2])
        m = ExpressionMatrix([base, base, near])
        exact = mine_reg_clusters(
            m, min_genes=3, min_conditions=3, gamma=0.1, epsilon=0.0
        )
        assert len(exact) == 0
        loose = mine_reg_clusters(
            m, min_genes=3, min_conditions=3, gamma=0.1, epsilon=0.1
        )
        assert len(loose) == 1

    def test_all_n_members_reported_from_other_orientation(self):
        """A family that descends along c1..c3 is reported ascending."""
        base = np.array([10.0, 5.0, 0.0])
        m = ExpressionMatrix([base, base + 1.0, base * 2.0])
        result = mine_reg_clusters(
            m, min_genes=3, min_conditions=3, gamma=0.3, epsilon=0.0
        )
        assert len(result) == 1
        assert result[0].chain == (2, 1, 0)
        assert len(result[0].p_members) == 3


class TestRunningExample:
    def test_figure6_single_cluster(self, running_example, paper_params):
        result = RegClusterMiner(running_example, paper_params).mine()
        assert len(result) == 1
        cluster = result[0]
        assert [
            running_example.condition_names[c] for c in cluster.chain
        ] == ["c7", "c9", "c5", "c1", "c3"]
        assert cluster.p_members == (0, 2)
        assert cluster.n_members == (1,)

    def test_figure6_search_statistics(self, running_example, paper_params):
        """The tree of Figure 6 exercises prunings 1, 3a and 4."""
        stats = RegClusterMiner(running_example, paper_params).mine().statistics
        assert stats.clusters_emitted == 1
        assert stats.max_depth == 5
        assert stats.pruned_p_majority >= 1  # node c3
        assert stats.pruned_min_genes >= 1  # e.g. node c2c1
        assert stats.coherence_rejections >= 1  # node c2c10c5

    def test_output_independent_of_prunings(
        self, running_example, paper_params
    ):
        with_prunings = set(
            RegClusterMiner(running_example, paper_params).mine().clusters
        )
        without = set(
            RegClusterMiner(
                running_example, paper_params, prunings=PruningConfig.none()
            )
            .mine()
            .clusters
        )
        assert with_prunings == without


class TestControls:
    def test_max_clusters_caps_output(self):
        base = np.arange(5, dtype=float)
        rows = [base * s + t for s, t in [(1, 0), (2, 1), (3, -1), (1, 5)]]
        m = ExpressionMatrix(np.asarray(rows))
        capped = mine_reg_clusters(
            m,
            min_genes=2,
            min_conditions=3,
            gamma=0.2,
            epsilon=0.0,
            max_clusters=2,
        )
        assert len(capped) == 2

    def test_min_conditions_exceeding_matrix_raises(self, running_example):
        params = MiningParameters(
            min_genes=2, min_conditions=11, gamma=0.1, epsilon=0.1
        )
        with pytest.raises(ValueError, match="exceeds"):
            RegClusterMiner(running_example, params)

    def test_empty_result_on_impossible_min_genes(self, running_example):
        result = mine_reg_clusters(
            running_example,
            min_genes=10,
            min_conditions=5,
            gamma=0.15,
            epsilon=0.1,
        )
        assert len(result) == 0

    def test_result_iteration_and_indexing(self, running_example, paper_params):
        result = RegClusterMiner(running_example, paper_params).mine()
        assert list(result)[0] == result[0]
        assert len(result) == 1

    def test_gamma_zero_still_strict(self):
        """gamma = 0 requires strictly monotone chains (no equal steps)."""
        m = ExpressionMatrix([[1.0, 1.0, 2.0], [1.0, 1.0, 2.0]])
        result = mine_reg_clusters(
            m, min_genes=2, min_conditions=3, gamma=0.0, epsilon=0.0
        )
        assert len(result) == 0

    def test_determinism(self, running_example, paper_params):
        first = RegClusterMiner(running_example, paper_params).mine().clusters
        second = RegClusterMiner(running_example, paper_params).mine().clusters
        assert first == second
