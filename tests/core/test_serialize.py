"""Unit tests for JSON serialization of mining results."""

from __future__ import annotations

import json

import pytest

from repro.core.cluster import RegCluster
from repro.core.miner import RegClusterMiner
from repro.core.params import MiningParameters
from repro.core.serialize import (
    cluster_from_dict,
    cluster_to_dict,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)


@pytest.fixture
def mined(running_example, paper_params):
    return RegClusterMiner(running_example, paper_params).mine()


class TestClusterRoundTrip:
    def test_ids_round_trip(self):
        cluster = RegCluster(chain=(6, 8, 4), p_members=(0, 2),
                             n_members=(1,))
        payload = cluster_to_dict(cluster)
        assert payload["chain"] == [6, 8, 4]
        assert cluster_from_dict(payload) == cluster

    def test_names_round_trip(self, running_example):
        cluster = RegCluster(chain=(6, 8, 4), p_members=(0, 2),
                             n_members=(1,))
        payload = cluster_to_dict(cluster, running_example)
        assert payload["chain"] == ["c7", "c9", "c5"]
        assert payload["p_members"] == ["g1", "g3"]
        assert cluster_from_dict(payload, running_example) == cluster

    def test_names_without_matrix_raise(self):
        with pytest.raises(ValueError, match="names"):
            cluster_from_dict(
                {"chain": ["c1"], "p_members": ["g1"], "n_members": []}
            )

    def test_missing_key_raises(self):
        with pytest.raises(ValueError, match="missing key"):
            cluster_from_dict({"chain": [0]})

    def test_n_members_optional(self):
        cluster = cluster_from_dict({"chain": [0, 1], "p_members": [3]})
        assert cluster.n_members == ()


class TestResultRoundTrip:
    def test_dict_round_trip(self, mined, running_example):
        payload = result_to_dict(mined, running_example)
        assert payload["format"] == "reg-cluster/v1"
        again = result_from_dict(payload, running_example)
        assert again.clusters == mined.clusters
        assert again.parameters == mined.parameters
        assert (
            again.statistics.nodes_expanded
            == mined.statistics.nodes_expanded
        )

    def test_json_serializable(self, mined):
        text = json.dumps(result_to_dict(mined))
        assert "clusters" in text

    def test_file_round_trip(self, mined, running_example, tmp_path):
        path = tmp_path / "result.json"
        save_result(mined, path, matrix=running_example)
        again = load_result(path, matrix=running_example)
        assert again.clusters == mined.clusters

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="unsupported format"):
            result_from_dict({"format": "other/v9"})

    def test_statistics_ignore_unknown_keys(self, mined):
        payload = result_to_dict(mined)
        payload["statistics"]["made_up_counter"] = 5
        again = result_from_dict(payload)
        assert not hasattr(again.statistics, "made_up_counter")


class TestNamedResultRoundTrip:
    """Names-on-the-wire round-trips (the service result format)."""

    def test_named_payload_uses_names_throughout(self, mined,
                                                 running_example):
        payload = result_to_dict(mined, running_example)
        (cluster,) = payload["clusters"]
        assert all(isinstance(c, str) for c in cluster["chain"])
        assert all(isinstance(g, str) for g in cluster["p_members"])
        assert all(isinstance(g, str) for g in cluster["n_members"])

    def test_named_file_round_trip(self, mined, running_example, tmp_path):
        path = tmp_path / "named.json"
        save_result(mined, path, matrix=running_example)
        text = path.read_text(encoding="utf-8")
        assert "g1" in text and "c7" in text
        again = load_result(path, matrix=running_example)
        assert again.clusters == mined.clusters
        assert again.parameters == mined.parameters

    def test_named_payload_needs_matrix_to_load(self, mined,
                                                running_example):
        payload = result_to_dict(mined, running_example)
        with pytest.raises(ValueError, match="names"):
            result_from_dict(payload)

    def test_mixed_ids_and_names_resolve(self, running_example):
        cluster = cluster_from_dict(
            {"chain": ["c7", 8, "c5"], "p_members": [0, "g3"],
             "n_members": ["g2"]},
            running_example,
        )
        assert cluster.chain == (6, 8, 4)
        assert cluster.p_members == (0, 2)
        assert cluster.n_members == (1,)


class TestStatisticsBlock:
    """The optional ``statistics`` member of the v1 schema."""

    def test_all_counters_round_trip(self, mined):
        payload = result_to_dict(mined)
        again = result_from_dict(payload)
        assert again.statistics.as_dict() == mined.statistics.as_dict()

    def test_statistics_block_is_optional(self, mined):
        payload = result_to_dict(mined)
        del payload["statistics"]
        again = result_from_dict(payload)
        assert again.clusters == mined.clusters
        assert again.statistics.nodes_expanded == 0

    def test_max_clusters_round_trips_in_parameters(self, running_example):
        result = RegClusterMiner(
            running_example,
            MiningParameters(min_genes=3, min_conditions=5, gamma=0.15,
                             epsilon=0.1, max_clusters=4),
        ).mine()
        again = result_from_dict(result_to_dict(result))
        assert again.parameters.max_clusters == 4
