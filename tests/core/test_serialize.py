"""Unit tests for JSON serialization of mining results."""

from __future__ import annotations

import json

import pytest

from repro.core.cluster import RegCluster
from repro.core.miner import RegClusterMiner
from repro.core.serialize import (
    cluster_from_dict,
    cluster_to_dict,
    load_result,
    result_from_dict,
    result_to_dict,
    save_result,
)


@pytest.fixture
def mined(running_example, paper_params):
    return RegClusterMiner(running_example, paper_params).mine()


class TestClusterRoundTrip:
    def test_ids_round_trip(self):
        cluster = RegCluster(chain=(6, 8, 4), p_members=(0, 2),
                             n_members=(1,))
        payload = cluster_to_dict(cluster)
        assert payload["chain"] == [6, 8, 4]
        assert cluster_from_dict(payload) == cluster

    def test_names_round_trip(self, running_example):
        cluster = RegCluster(chain=(6, 8, 4), p_members=(0, 2),
                             n_members=(1,))
        payload = cluster_to_dict(cluster, running_example)
        assert payload["chain"] == ["c7", "c9", "c5"]
        assert payload["p_members"] == ["g1", "g3"]
        assert cluster_from_dict(payload, running_example) == cluster

    def test_names_without_matrix_raise(self):
        with pytest.raises(ValueError, match="names"):
            cluster_from_dict(
                {"chain": ["c1"], "p_members": ["g1"], "n_members": []}
            )

    def test_missing_key_raises(self):
        with pytest.raises(ValueError, match="missing key"):
            cluster_from_dict({"chain": [0]})

    def test_n_members_optional(self):
        cluster = cluster_from_dict({"chain": [0, 1], "p_members": [3]})
        assert cluster.n_members == ()


class TestResultRoundTrip:
    def test_dict_round_trip(self, mined, running_example):
        payload = result_to_dict(mined, running_example)
        assert payload["format"] == "reg-cluster/v1"
        again = result_from_dict(payload, running_example)
        assert again.clusters == mined.clusters
        assert again.parameters == mined.parameters
        assert (
            again.statistics.nodes_expanded
            == mined.statistics.nodes_expanded
        )

    def test_json_serializable(self, mined):
        text = json.dumps(result_to_dict(mined))
        assert "clusters" in text

    def test_file_round_trip(self, mined, running_example, tmp_path):
        path = tmp_path / "result.json"
        save_result(mined, path, matrix=running_example)
        again = load_result(path, matrix=running_example)
        assert again.clusters == mined.clusters

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="unsupported format"):
            result_from_dict({"format": "other/v9"})

    def test_statistics_ignore_unknown_keys(self, mined):
        payload = result_to_dict(mined)
        payload["statistics"]["made_up_counter"] = 5
        again = result_from_dict(payload)
        assert not hasattr(again.statistics, "made_up_counter")
