"""Tests for the miner's service-facing hooks.

Covers the three seams added for :mod:`repro.service`: the
``progress_callback`` / ``should_stop`` constructor hooks, the
``start_conditions`` sharding restriction of :meth:`RegClusterMiner.mine`,
and the prebuilt-``index`` injection path.
"""

from __future__ import annotations

import pytest

from repro.core.miner import (
    MiningCancelled,
    RegClusterMiner,
)
from repro.core.rwave import RWaveIndex


class TestProgressCallback:
    def test_expanded_events_cover_every_node(self, running_example,
                                              paper_params):
        events = []
        result = RegClusterMiner(
            running_example,
            paper_params,
            progress_callback=lambda event, nodes: events.append(
                (event, nodes)
            ),
        ).mine()
        expanded = [n for e, n in events if e == "expanded"]
        assert expanded == list(range(1, result.statistics.nodes_expanded + 1))

    def test_emitted_events_match_cluster_count(self, running_example,
                                                paper_params):
        events = []
        result = RegClusterMiner(
            running_example,
            paper_params,
            progress_callback=lambda event, nodes: events.append(event),
        ).mine()
        assert events.count("emitted") == len(result.clusters) == 1

    def test_no_callback_no_events(self, running_example, paper_params):
        # The default path must not require the hook (zero-overhead off).
        result = RegClusterMiner(running_example, paper_params).mine()
        assert len(result.clusters) == 1


class TestShouldStop:
    def test_immediate_stop_cancels_with_partial_state(self, running_example,
                                                       paper_params):
        with pytest.raises(MiningCancelled) as info:
            RegClusterMiner(
                running_example, paper_params, should_stop=lambda: True
            ).mine()
        assert "cancelled" in str(info.value)
        assert info.value.partial_clusters == []

    def test_stop_after_n_nodes(self, running_example, paper_params):
        # The full search expands 17 nodes; stop partway through.
        seen = {"nodes": 0}

        def stop() -> bool:
            seen["nodes"] += 1
            return seen["nodes"] > 8

        with pytest.raises(MiningCancelled) as info:
            RegClusterMiner(
                running_example, paper_params, should_stop=stop
            ).mine()
        full = RegClusterMiner(running_example, paper_params).mine()
        assert "after 9 nodes" in str(info.value)
        assert seen["nodes"] < full.statistics.nodes_expanded

    def test_partial_clusters_carried_on_late_cancel(self, running_example,
                                                     paper_params):
        emitted = {"count": 0}

        def on_progress(event: str, nodes: int) -> None:
            if event == "emitted":
                emitted["count"] += 1

        with pytest.raises(MiningCancelled) as info:
            RegClusterMiner(
                running_example,
                paper_params,
                progress_callback=on_progress,
                should_stop=lambda: emitted["count"] > 0,
            ).mine()
        assert len(info.value.partial_clusters) == 1


class TestStartConditions:
    def test_full_range_default(self, running_example, paper_params):
        explicit = RegClusterMiner(running_example, paper_params).mine(
            start_conditions=range(running_example.n_conditions)
        )
        default = RegClusterMiner(running_example, paper_params).mine()
        assert explicit.clusters == default.clusters
        assert (
            explicit.statistics.as_dict() == default.statistics.as_dict()
        )

    def test_out_of_range_start_rejected(self, running_example, paper_params):
        miner = RegClusterMiner(running_example, paper_params)
        with pytest.raises(ValueError, match="start"):
            miner.mine(start_conditions=[running_example.n_conditions])
        with pytest.raises(ValueError, match="start"):
            miner.mine(start_conditions=[-1])


class TestInjectedIndex:
    def test_prebuilt_index_gives_identical_result(self, running_example,
                                                   paper_params):
        index = RWaveIndex(running_example, paper_params.gamma)
        with_index = RegClusterMiner(
            running_example, paper_params, index=index
        ).mine()
        without = RegClusterMiner(running_example, paper_params).mine()
        assert with_index.clusters == without.clusters
        assert (
            with_index.statistics.as_dict() == without.statistics.as_dict()
        )

    def test_gamma_mismatch_rejected(self, running_example, paper_params):
        index = RWaveIndex(running_example, 0.3)
        with pytest.raises(ValueError, match="gamma"):
            RegClusterMiner(running_example, paper_params, index=index)

    def test_matrix_mismatch_rejected(self, running_example, tiny_matrix,
                                      paper_params):
        index = RWaveIndex(tiny_matrix, paper_params.gamma)
        with pytest.raises(ValueError, match="matrix"):
            RegClusterMiner(running_example, paper_params, index=index)
