"""Targeted tests for the miner's batched-node internals.

Covers the degenerate-baseline accounting (the former silent-NaN path),
the depth-1 distinct-member count, and the phase timers — the pieces of
the kernelized hot path whose behaviour is not already pinned by the
output-equivalence suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.miner import (
    PhaseTimers,
    RegClusterMiner,
    SearchStatistics,
)
from repro.core.params import MiningParameters
from repro.core.serialize import result_from_dict, result_to_dict
from repro.matrix.expression import ExpressionMatrix


def degenerate_matrix():
    """g0's first chain step is subnormal, so its Eq. 7 quotient at the
    later steps overflows to inf — the degenerate-baseline case."""
    rows = [
        [0.0, 1e-310, 1.0, 2.0],
        [0.0, 1.0, 2.0, 3.0],
        [0.0, 1.1, 2.1, 3.2],
        [0.0, 0.9, 1.9, 2.9],
    ]
    return ExpressionMatrix(np.array(rows))


DEGENERATE_PARAMS = MiningParameters(
    min_genes=2, min_conditions=3, gamma=0.0, epsilon=0.5
)


class TestDegenerateBaselines:
    @pytest.mark.parametrize("use_kernel", [False, True])
    def test_counted_and_no_warnings(self, use_kernel):
        miner = RegClusterMiner(
            degenerate_matrix(), DEGENERATE_PARAMS, use_kernel=use_kernel
        )
        with np.errstate(all="raise"):  # any leaked fp warning -> error
            result = miner.mine()
        assert result.statistics.degenerate_genes_dropped > 0
        # Chains through the subnormal step must never keep g0: its H
        # score there is non-finite, so no cluster on a (c0, c1, ...)
        # chain may contain it.
        for cluster in result:
            if cluster.chain[:2] == (0, 1):
                assert 0 not in cluster.p_members
                assert 0 not in cluster.n_members

    def test_paths_agree_on_the_count(self):
        runs = [
            RegClusterMiner(
                degenerate_matrix(), DEGENERATE_PARAMS, use_kernel=uk
            ).mine()
            for uk in (False, True)
        ]
        assert (
            runs[0].statistics.as_dict() == runs[1].statistics.as_dict()
        )

    def test_clean_data_counts_zero(self, running_example):
        params = MiningParameters(
            min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
        )
        result = RegClusterMiner(running_example, params).mine()
        assert result.statistics.degenerate_genes_dropped == 0

    def test_counter_serializes(self):
        matrix = degenerate_matrix()
        result = RegClusterMiner(matrix, DEGENERATE_PARAMS).mine()
        assert result.statistics.degenerate_genes_dropped > 0
        payload = result_to_dict(result, matrix)
        assert (
            payload["statistics"]["degenerate_genes_dropped"]
            == result.statistics.degenerate_genes_dropped
        )
        back = result_from_dict(payload, matrix)
        assert (
            back.statistics.as_dict() == result.statistics.as_dict()
        )


class TestDistinctMembers:
    """Depth-1 MinG pruning must count overlapping p/n genes once."""

    @pytest.fixture
    def miner(self, running_example):
        params = MiningParameters(
            min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
        )
        return RegClusterMiner(running_example, params)

    def test_overlap_counted_once(self, miner):
        p = np.array([0, 1, 2], dtype=np.intp)
        n = np.array([2, 1], dtype=np.intp)
        assert miner._distinct_members(p, n) == 3

    def test_disjoint(self, miner):
        p = np.array([0], dtype=np.intp)
        n = np.array([1, 2], dtype=np.intp)
        assert miner._distinct_members(p, n) == 3

    def test_empty_sides(self, miner):
        empty = np.empty(0, dtype=np.intp)
        assert miner._distinct_members(empty, empty) == 0
        assert (
            miner._distinct_members(np.array([1], dtype=np.intp), empty)
            == 1
        )

    def test_scratch_mask_left_clean(self, miner):
        p = np.array([0, 1], dtype=np.intp)
        n = np.array([1, 2], dtype=np.intp)
        miner._distinct_members(p, n)
        assert not miner._scratch.any()

    def test_depth1_total_gates_on_distinct_count(self):
        # Three genes, all of them both p- and n-reachable: the depth-1
        # node must see 3 distinct members, not 6, so MinG = 4 prunes it.
        base = np.array([0.0, 5.0, 10.0, 5.0, 0.0])
        matrix = ExpressionMatrix([base, base + 1.0, base * 2.0])
        params = MiningParameters(
            min_genes=4, min_conditions=3, gamma=0.1, epsilon=1.0
        )
        result = RegClusterMiner(matrix, params).mine()
        assert len(result) == 0
        assert result.statistics.pruned_min_genes > 0


class TestPhaseTimers:
    def test_populated_by_a_mine_run(self, running_example):
        params = MiningParameters(
            min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
        )
        result = RegClusterMiner(running_example, params).mine()
        timers = result.statistics.timers
        assert timers.candidates > 0.0
        assert timers.windows >= 0.0
        assert timers.emit >= 0.0

    def test_excluded_from_counter_dict(self):
        stats = SearchStatistics()
        assert "timers" not in stats.as_dict()
        assert all(
            isinstance(value, int) for value in stats.as_dict().values()
        )

    def test_prefixed_and_add(self):
        timers = PhaseTimers(candidates=1.0, windows=2.0, emit=3.0)
        assert timers.prefixed() == {
            "time_candidates": 1.0,
            "time_windows": 2.0,
            "time_emit": 3.0,
        }
        other = PhaseTimers(candidates=0.5)
        timers.add(other)
        assert timers.candidates == 1.5
        assert timers.as_dict() == {
            "candidates": 1.5,
            "windows": 2.0,
            "emit": 3.0,
        }
