"""Property-based tests for the RWave^gamma model (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rwave import RWaveModel

profiles = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
    min_size=1,
    max_size=14,
)
gammas = st.floats(min_value=0.0, max_value=1.0)


def brute_force_predecessors(row, threshold, condition):
    return {
        b
        for b in range(len(row))
        if row[condition] - row[b] > threshold
    }


def brute_force_longest_up(row, threshold, condition, _cache=None):
    if _cache is None:
        _cache = {}
    if condition in _cache:
        return _cache[condition]
    succs = [
        b for b in range(len(row)) if row[b] - row[condition] > threshold
    ]
    result = 1 + max(
        (brute_force_longest_up(row, threshold, s, _cache) for s in succs),
        default=0,
    )
    _cache[condition] = result
    return result


@given(profiles, gammas)
@settings(max_examples=200, deadline=None)
def test_queries_equal_brute_force(values, gamma):
    row = np.asarray(values, dtype=np.float64)
    threshold = gamma * (row.max() - row.min())
    model = RWaveModel(row, threshold)
    for condition in range(len(row)):
        expected = brute_force_predecessors(row, threshold, condition)
        got = set(model.regulation_predecessors(condition).tolist())
        assert got == expected
        expected_succ = {
            b for b in range(len(row)) if row[b] - row[condition] > threshold
        }
        got_succ = set(model.regulation_successors(condition).tolist())
        assert got_succ == expected_succ


@given(profiles, gammas)
@settings(max_examples=200, deadline=None)
def test_pointer_invariants(values, gamma):
    row = np.asarray(values, dtype=np.float64)
    threshold = gamma * (row.max() - row.min())
    model = RWaveModel(row, threshold)
    sorted_values = model.sorted_values
    previous_tail, previous_head = -1, -1
    for pointer in model.pointers:
        # bordering pair is regulated
        assert (
            sorted_values[pointer.head] - sorted_values[pointer.tail]
            > threshold
        )
        # pointers are strictly ordered on both endpoints (non-embedded)
        assert pointer.tail > previous_tail
        assert pointer.head > previous_head
        previous_tail, previous_head = pointer.tail, pointer.head
        # minimality: the tail is the *closest* predecessor of the head
        if pointer.tail + 1 < pointer.head:
            assert (
                sorted_values[pointer.head] - sorted_values[pointer.tail + 1]
                <= threshold
            )


@given(profiles, gammas)
@settings(max_examples=100, deadline=None)
def test_chain_tables_equal_brute_force(values, gamma):
    row = np.asarray(values, dtype=np.float64)
    threshold = gamma * (row.max() - row.min())
    model = RWaveModel(row, threshold)
    cache = {}
    for condition in range(len(row)):
        assert model.max_up_from(condition) == brute_force_longest_up(
            row, threshold, condition, cache
        )


@given(profiles, gammas)
@settings(max_examples=100, deadline=None)
def test_down_table_is_mirrored_up_table(values, gamma):
    row = np.asarray(values, dtype=np.float64)
    threshold = gamma * (row.max() - row.min())
    model = RWaveModel(row, threshold)
    mirror = RWaveModel(-row, threshold)
    for condition in range(len(row)):
        assert model.max_down_from(condition) == mirror.max_up_from(condition)
