"""Property-based tests for the RWave^gamma model (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.contracts import (
    ContractViolation,
    activated,
    check_rwave_index,
    check_rwave_model,
)
from repro.core.rwave import RWaveIndex, RWaveModel
from repro.matrix.expression import ExpressionMatrix

profiles = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
    min_size=1,
    max_size=14,
)
gammas = st.floats(min_value=0.0, max_value=1.0)


def brute_force_predecessors(row, threshold, condition):
    return {
        b
        for b in range(len(row))
        if row[condition] - row[b] > threshold
    }


def brute_force_longest_up(row, threshold, condition, _cache=None):
    if _cache is None:
        _cache = {}
    if condition in _cache:
        return _cache[condition]
    succs = [
        b for b in range(len(row)) if row[b] - row[condition] > threshold
    ]
    result = 1 + max(
        (brute_force_longest_up(row, threshold, s, _cache) for s in succs),
        default=0,
    )
    _cache[condition] = result
    return result


@given(profiles, gammas)
@settings(max_examples=200, deadline=None)
def test_queries_equal_brute_force(values, gamma):
    row = np.asarray(values, dtype=np.float64)
    threshold = gamma * (row.max() - row.min())
    model = RWaveModel(row, threshold)
    for condition in range(len(row)):
        expected = brute_force_predecessors(row, threshold, condition)
        got = set(model.regulation_predecessors(condition).tolist())
        assert got == expected
        expected_succ = {
            b for b in range(len(row)) if row[b] - row[condition] > threshold
        }
        got_succ = set(model.regulation_successors(condition).tolist())
        assert got_succ == expected_succ


@given(profiles, gammas)
@settings(max_examples=200, deadline=None)
def test_pointer_invariants(values, gamma):
    row = np.asarray(values, dtype=np.float64)
    threshold = gamma * (row.max() - row.min())
    model = RWaveModel(row, threshold)
    sorted_values = model.sorted_values
    previous_tail, previous_head = -1, -1
    for pointer in model.pointers:
        # bordering pair is regulated
        assert (
            sorted_values[pointer.head] - sorted_values[pointer.tail]
            > threshold
        )
        # pointers are strictly ordered on both endpoints (non-embedded)
        assert pointer.tail > previous_tail
        assert pointer.head > previous_head
        previous_tail, previous_head = pointer.tail, pointer.head
        # minimality: the tail is the *closest* predecessor of the head
        if pointer.tail + 1 < pointer.head:
            assert (
                sorted_values[pointer.head] - sorted_values[pointer.tail + 1]
                <= threshold
            )


@given(profiles, gammas)
@settings(max_examples=100, deadline=None)
def test_chain_tables_equal_brute_force(values, gamma):
    row = np.asarray(values, dtype=np.float64)
    threshold = gamma * (row.max() - row.min())
    model = RWaveModel(row, threshold)
    cache = {}
    for condition in range(len(row)):
        assert model.max_up_from(condition) == brute_force_longest_up(
            row, threshold, condition, cache
        )


@given(profiles, gammas)
@settings(max_examples=100, deadline=None)
def test_down_table_is_mirrored_up_table(values, gamma):
    row = np.asarray(values, dtype=np.float64)
    threshold = gamma * (row.max() - row.min())
    model = RWaveModel(row, threshold)
    mirror = RWaveModel(-row, threshold)
    for condition in range(len(row)):
        assert model.max_down_from(condition) == mirror.max_up_from(condition)


@given(profiles, gammas)
@settings(max_examples=200, deadline=None)
def test_order_is_sorted_permutation(values, gamma):
    """Definition 3.1: the model stores a sorted permutation of conditions."""
    row = np.asarray(values, dtype=np.float64)
    threshold = gamma * (row.max() - row.min())
    model = RWaveModel(row, threshold)
    n = len(row)
    assert sorted(model.order.tolist()) == list(range(n))
    assert np.all(np.diff(model.sorted_values) >= 0)
    assert np.array_equal(model.sorted_values, row[model.order])
    # position is the inverse permutation of order
    assert np.all(model.position[model.order] == np.arange(n))


@given(profiles, gammas)
@settings(max_examples=100, deadline=None)
def test_contracts_accept_every_built_model(values, gamma):
    """The Lemma 3.1 contract checker passes on any freshly built model."""
    row = np.asarray(values, dtype=np.float64)
    threshold = gamma * (row.max() - row.min())
    check_rwave_model(RWaveModel(row, threshold))


@given(
    st.lists(profiles.filter(lambda p: len(p) >= 2), min_size=1, max_size=4),
    gammas,
)
@settings(max_examples=50, deadline=None)
def test_contracts_accept_every_built_index(rows, gamma):
    width = min(len(r) for r in rows)
    matrix = ExpressionMatrix([r[:width] for r in rows])
    with activated():
        index = RWaveIndex(matrix, gamma)  # runs maybe_check_rwave_index
    check_rwave_index(index)


def test_contracts_reject_embedded_pointers():
    """An embedded pointer pair must trip the Definition 3.1 check."""
    from repro.core.rwave import RegulationPointer

    model = RWaveModel([1.0, 5.0, 2.0, 9.0], threshold=1.5)
    # sorted values are [1, 2, 5, 9]; both pointers mark regulated pairs,
    # but (1, 2) is embedded inside (0, 3).
    model.pointers = (
        RegulationPointer(tail=0, head=3),
        RegulationPointer(tail=1, head=2),
    )
    with pytest.raises(ContractViolation):
        check_rwave_model(model)


def test_contracts_reject_unsorted_values():
    model = RWaveModel([1.0, 5.0, 2.0, 9.0], threshold=1.5)
    model.sorted_values = model.sorted_values[::-1].copy()
    with pytest.raises(ContractViolation):
        check_rwave_model(model)
