"""The kernel path's equivalence guarantee, asserted bit for bit.

``RegClusterMiner(use_kernel=True)`` — precomputed regulation kernels,
batched candidate scoring, bucket prefilter, segmented window scan —
must produce *exactly* the output of the legacy per-candidate path
(``use_kernel=False``): the same clusters in the same emission order,
and the same search statistics.  Every dataset here is pinned (fixed
seeds), so failures are reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.miner import PruningConfig, RegClusterMiner, mine_reg_clusters
from repro.core.params import MiningParameters
from repro.datasets.synthetic import SyntheticConfig, make_synthetic_dataset
from repro.datasets.yeast import make_yeast_surrogate


def mine_both(matrix, params, prunings=None):
    legacy = RegClusterMiner(
        matrix, params, prunings=prunings, use_kernel=False
    )
    kernelized = RegClusterMiner(
        matrix, params, prunings=prunings, use_kernel=True
    )
    assert not legacy.uses_kernel
    assert kernelized.uses_kernel
    return legacy.mine(), kernelized.mine()


def assert_identical(legacy, kernelized):
    """Cluster-by-cluster, field-by-field, order included."""
    assert len(legacy) == len(kernelized)
    for a, b in zip(legacy, kernelized):
        assert a.chain == b.chain
        assert a.p_members == b.p_members
        assert a.n_members == b.n_members
    assert (
        legacy.statistics.as_dict() == kernelized.statistics.as_dict()
    )


RUNNING_PARAMS = MiningParameters(
    min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
)


class TestRunningExample:
    def test_identical(self, running_example):
        assert_identical(*mine_both(running_example, RUNNING_PARAMS))

    def test_identical_with_prunings_off(self, running_example):
        assert_identical(
            *mine_both(
                running_example, RUNNING_PARAMS, prunings=PruningConfig.none()
            )
        )

    def test_paper_pinned_cluster_on_kernel_path(self, running_example):
        result = mine_reg_clusters(
            running_example,
            min_genes=3,
            min_conditions=5,
            gamma=0.15,
            epsilon=0.1,
            use_kernel=True,
        )
        assert len(result) == 1
        assert result[0].chain == (6, 8, 4, 0, 2)
        assert result[0].p_members == (0, 2)
        assert result[0].n_members == (1,)


class TestYeastSurrogate:
    def test_identical(self):
        surrogate = make_yeast_surrogate(shape=(600, 17))
        params = MiningParameters(
            min_genes=12, min_conditions=6, gamma=0.12, epsilon=0.02
        )
        legacy, kernelized = mine_both(surrogate.matrix, params)
        assert len(legacy) > 0
        assert_identical(legacy, kernelized)


@pytest.mark.parametrize("seed", [1, 2, 3])
class TestPinnedSynthetics:
    @staticmethod
    def _dataset(seed):
        config = SyntheticConfig(
            n_genes=300, n_conditions=12, n_clusters=4, seed=seed
        )
        return make_synthetic_dataset(config).matrix

    @staticmethod
    def _params():
        # The paper's Figure 7 configuration at 300 genes: MinG = 3,
        # MinC = 6, gamma = 0.1, epsilon = 0.01.
        return MiningParameters(
            min_genes=3, min_conditions=6, gamma=0.1, epsilon=0.01
        )

    def test_identical(self, seed):
        legacy, kernelized = mine_both(self._dataset(seed), self._params())
        assert len(legacy) > 0
        assert_identical(legacy, kernelized)

    def test_identical_with_prunings_off(self, seed):
        assert_identical(
            *mine_both(
                self._dataset(seed),
                self._params(),
                prunings=PruningConfig.none(),
            )
        )


class TestRandomMatrices:
    """Unstructured inputs: no planted clusters, lots of short branches."""

    @pytest.mark.parametrize("seed", [11, 12])
    def test_identical(self, seed):
        rng = np.random.default_rng(seed)
        from repro.matrix.expression import ExpressionMatrix

        matrix = ExpressionMatrix(rng.normal(size=(40, 8)) * 5.0)
        params = MiningParameters(
            min_genes=4, min_conditions=4, gamma=0.05, epsilon=0.5
        )
        assert_identical(*mine_both(matrix, params))


class TestMaxClustersCap:
    def test_identical_truncation(self):
        config = SyntheticConfig(
            n_genes=300, n_conditions=12, n_clusters=4, seed=2
        )
        matrix = make_synthetic_dataset(config).matrix
        params = MiningParameters(
            min_genes=3,
            min_conditions=6,
            gamma=0.1,
            epsilon=0.01,
            max_clusters=2,
        )
        legacy, kernelized = mine_both(matrix, params)
        assert len(legacy) == 2
        assert_identical(legacy, kernelized)
