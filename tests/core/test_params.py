"""Unit tests for MiningParameters validation."""

from __future__ import annotations

import pytest

from repro.core.params import MiningParameters


def make(**overrides):
    defaults = dict(min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1)
    defaults.update(overrides)
    return MiningParameters(**defaults)


class TestValidation:
    def test_valid_defaults(self):
        p = make()
        assert p.min_genes == 3
        assert p.epsilon == 0.1

    def test_min_genes_lower_bound(self):
        with pytest.raises(ValueError, match="min_genes"):
            make(min_genes=0)

    def test_min_conditions_needs_baseline_pair(self):
        with pytest.raises(ValueError, match="min_conditions"):
            make(min_conditions=1)

    @pytest.mark.parametrize("gamma", [-0.1, 1.5])
    def test_gamma_range(self, gamma):
        with pytest.raises(ValueError, match="gamma"):
            make(gamma=gamma)

    def test_gamma_boundaries_accepted(self):
        assert make(gamma=0.0).gamma == 0.0
        assert make(gamma=1.0).gamma == 1.0

    def test_epsilon_non_negative(self):
        with pytest.raises(ValueError, match="epsilon"):
            make(epsilon=-0.01)

    def test_max_clusters_validation(self):
        with pytest.raises(ValueError, match="max_clusters"):
            make(max_clusters=0)
        assert make(max_clusters=5).max_clusters == 5

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make().gamma = 0.5


class TestDerived:
    @pytest.mark.parametrize(
        "min_genes,expected", [(1, 1), (2, 1), (3, 2), (20, 10), (21, 11)]
    )
    def test_min_p_members(self, min_genes, expected):
        assert make(min_genes=min_genes).min_p_members == expected

    def test_with_overrides_revalidates(self):
        p = make()
        assert p.with_overrides(gamma=0.5).gamma == 0.5
        with pytest.raises(ValueError):
            p.with_overrides(gamma=2.0)
