"""Unit and property tests for the coherence measurement (Eq. 5-7,
Lemma 3.2), pinning the paper's worked H-score numbers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coherence import (
    chain_h_profile,
    coherence_score,
    fit_affine,
    is_shifting_and_scaling,
)


class TestPaperScores:
    """Section 3.2 worked example: H scores on conditions c7,c9,c5,c1,c3."""

    CHAIN = ("c7", "c9", "c5", "c1", "c3")

    @pytest.mark.parametrize("gene", ["g1", "g2", "g3"])
    def test_figure2_h_scores(self, running_example, gene):
        baseline = ("c7", "c9")
        assert coherence_score(
            running_example, gene, baseline, ("c7", "c9")
        ) == pytest.approx(1.0)
        assert coherence_score(
            running_example, gene, baseline, ("c9", "c5")
        ) == pytest.approx(0.5)
        assert coherence_score(
            running_example, gene, baseline, ("c5", "c1")
        ) == pytest.approx(1.0)
        assert coherence_score(
            running_example, gene, baseline, ("c1", "c3")
        ) == pytest.approx(0.5)

    @pytest.mark.parametrize("gene", ["g1", "g2", "g3"])
    def test_chain_h_profile(self, running_example, gene):
        profile = chain_h_profile(running_example, gene, self.CHAIN)
        assert profile == pytest.approx([1.0, 0.5, 1.0, 0.5])

    def test_figure4_outlier_scores(self, running_example):
        """H(1/3, c2,c10, c10,c8) = 0.5263 but H(2, ...) = 4.6."""
        baseline = ("c2", "c10")
        step = ("c10", "c8")
        assert coherence_score(
            running_example, "g1", baseline, step
        ) == pytest.approx(0.5263, abs=1e-4)
        assert coherence_score(
            running_example, "g3", baseline, step
        ) == pytest.approx(0.5263, abs=1e-4)
        assert coherence_score(
            running_example, "g2", baseline, step
        ) == pytest.approx(4.6, abs=1e-9)

    def test_figure6_pruned_step_scores(self, running_example):
        """H(1/3, c2,c10, c10,c5) = 0.5263 while H(2, ...) = 2."""
        baseline = ("c2", "c10")
        step = ("c10", "c5")
        assert coherence_score(
            running_example, "g1", baseline, step
        ) == pytest.approx(0.5263, abs=1e-4)
        assert coherence_score(
            running_example, "g2", baseline, step
        ) == pytest.approx(2.0)

    def test_degenerate_baseline_raises(self, running_example):
        # g1 has equal values on c5 and c8 (both 0)
        with pytest.raises(ZeroDivisionError):
            coherence_score(running_example, "g1", ("c5", "c8"), ("c1", "c3"))

    def test_chain_too_short(self, running_example):
        with pytest.raises(ValueError, match="two conditions"):
            chain_h_profile(running_example, "g1", ("c1",))


class TestLemma32:
    def test_affine_profiles_are_detected(self):
        base = np.array([1.0, 4.0, 2.0, 8.0])
        assert is_shifting_and_scaling(base, 2.5 * base - 5.0)
        assert is_shifting_and_scaling(base, -2.5 * base + 35.0)
        assert is_shifting_and_scaling(base, base + 7.0)  # pure shifting
        assert is_shifting_and_scaling(base, 3.0 * base)  # pure scaling

    def test_non_affine_rejected(self):
        base = np.array([1.0, 4.0, 2.0, 8.0])
        assert not is_shifting_and_scaling(base, base**2)

    def test_epsilon_tolerance(self):
        base = np.array([0.0, 1.0, 2.0, 3.0])
        noisy = np.array([0.0, 1.0, 2.0, 3.3])
        assert not is_shifting_and_scaling(base, noisy)
        assert is_shifting_and_scaling(base, noisy, epsilon=0.5)

    def test_constant_profile_rejected(self):
        base = np.array([1.0, 2.0, 3.0])
        assert not is_shifting_and_scaling(base, np.zeros(3))

    def test_short_profiles_trivially_pass(self):
        assert is_shifting_and_scaling(np.array([1.0]), np.array([5.0]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            is_shifting_and_scaling(np.zeros(3), np.zeros(4))

    @given(
        st.lists(
            st.integers(min_value=-200, max_value=200),
            min_size=2,
            max_size=10,
            unique=True,
        ),
        st.floats(min_value=0.1, max_value=10),
        st.floats(min_value=-100, max_value=100),
        st.booleans(),
    )
    @settings(max_examples=200, deadline=None)
    def test_affine_transform_always_coherent(self, values, s1, s2, negate):
        """Lemma 3.2 forward direction as a property.

        Values are drawn on a unit-separated grid: the lemma's algebra is
        exact, but float subtraction of near-identical magnitudes is not,
        so the property is asserted away from catastrophic cancellation.
        """
        base = np.asarray(values, dtype=np.float64) / 4.0
        scaling = -s1 if negate else s1
        assert is_shifting_and_scaling(base, scaling * base + s2, rtol=1e-6)


class TestAffineFit:
    def test_paper_figure2_factors(self, running_example):
        """d1 = 2.5 * d3 - 5 and d2 = -2.5 * d3 + 35 on {c5,c1,c3,c9,c7}."""
        conditions = ["c5", "c1", "c3", "c9", "c7"]
        d1 = running_example.submatrix(["g1"], conditions).values[0]
        d2 = running_example.submatrix(["g2"], conditions).values[0]
        d3 = running_example.submatrix(["g3"], conditions).values[0]

        fit_13 = fit_affine(d1, d3)
        assert fit_13.scaling == pytest.approx(2.5)
        assert fit_13.shifting == pytest.approx(-5.0)
        assert fit_13.residual == pytest.approx(0.0, abs=1e-9)
        assert fit_13.is_positive_correlation

        fit_23 = fit_affine(d2, d3)
        assert fit_23.scaling == pytest.approx(-2.5)
        assert fit_23.shifting == pytest.approx(35.0)
        assert not fit_23.is_positive_correlation

        fit_21 = fit_affine(d2, d1)
        assert fit_21.scaling == pytest.approx(-1.0)
        assert fit_21.shifting == pytest.approx(30.0)

    def test_figure4_relation(self, running_example):
        """d3 = 0.4 * d1 + 2 on conditions {c2, c4, c8, c10}."""
        conditions = ["c2", "c4", "c8", "c10"]
        d1 = running_example.submatrix(["g1"], conditions).values[0]
        d3 = running_example.submatrix(["g3"], conditions).values[0]
        fit = fit_affine(d3, d1)
        assert fit.scaling == pytest.approx(0.4)
        assert fit.shifting == pytest.approx(2.0)
        assert fit.residual == pytest.approx(0.0, abs=1e-9)

    def test_apply_round_trip(self):
        base = np.array([1.0, 2.0, 5.0])
        fit = fit_affine(3.0 * base - 1.0, base)
        assert fit.apply(base) == pytest.approx([2.0, 5.0, 14.0])

    def test_constant_source(self):
        fit = fit_affine(np.array([1.0, 2.0]), np.array([3.0, 3.0]))
        assert fit.scaling == 0.0
        assert fit.shifting == pytest.approx(1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            fit_affine(np.array([]), np.array([]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            fit_affine(np.zeros(2), np.zeros(3))
