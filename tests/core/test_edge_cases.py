"""Failure-injection and degenerate-input tests across the core stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.miner import MiningParameters, RegClusterMiner, mine_reg_clusters
from repro.core.reference import reference_mine
from repro.core.rwave import RWaveModel, build_rwave
from repro.core.window import coherent_gene_windows
from repro.matrix.expression import ExpressionMatrix


class TestDegenerateMatrices:
    def test_all_constant_matrix_yields_nothing(self):
        m = ExpressionMatrix(np.full((5, 6), 3.0))
        result = mine_reg_clusters(
            m, min_genes=2, min_conditions=2, gamma=0.0, epsilon=1.0
        )
        assert len(result) == 0

    def test_constant_gene_never_joins_clusters(self):
        base = np.array([0.0, 5.0, 10.0])
        m = ExpressionMatrix([base, base + 1.0, np.full(3, 4.0)])
        result = mine_reg_clusters(
            m, min_genes=2, min_conditions=3, gamma=0.2, epsilon=0.1
        )
        for cluster in result.clusters:
            assert 2 not in cluster.genes

    def test_two_condition_matrix(self):
        m = ExpressionMatrix([[0.0, 10.0], [1.0, 9.0], [2.0, 8.0]])
        result = mine_reg_clusters(
            m, min_genes=3, min_conditions=2, gamma=0.2, epsilon=5.0
        )
        assert len(result) == 1
        assert result[0].chain == (0, 1)

    def test_single_gene_matrix(self):
        m = ExpressionMatrix([[0.0, 5.0, 10.0]])
        result = mine_reg_clusters(
            m, min_genes=1, min_conditions=3, gamma=0.1, epsilon=0.0
        )
        assert len(result) == 1
        assert result[0].p_members == (0,)

    def test_heavily_tied_values(self):
        """Ties everywhere: the stable sort and strict inequalities must
        keep the miner consistent with the oracle."""
        values = np.array(
            [
                [1.0, 1.0, 2.0, 2.0, 3.0],
                [1.0, 2.0, 2.0, 3.0, 3.0],
                [3.0, 2.0, 2.0, 1.0, 1.0],
            ]
        )
        m = ExpressionMatrix(values)
        params = MiningParameters(
            min_genes=2, min_conditions=2, gamma=0.1, epsilon=0.2
        )
        assert set(RegClusterMiner(m, params).mine().clusters) == (
            reference_mine(m, params)
        )

    def test_extreme_magnitudes(self):
        base = np.array([0.0, 1e7, 2e7, 3e7])
        m = ExpressionMatrix([base, 2.0 * base + 1e6, -base + 5e7])
        result = mine_reg_clusters(
            m, min_genes=3, min_conditions=4, gamma=0.2, epsilon=1e-6
        )
        assert len(result) == 1
        assert result[0].n_genes == 3

    def test_tiny_magnitudes(self):
        base = np.array([0.0, 1e-7, 2e-7, 3e-7])
        m = ExpressionMatrix([base, 2.0 * base, base + 1e-8])
        result = mine_reg_clusters(
            m, min_genes=3, min_conditions=4, gamma=0.2, epsilon=1e-3
        )
        assert len(result) == 1


class TestRWaveEdges:
    def test_single_condition_model(self):
        model = RWaveModel(np.array([5.0]), 1.0)
        assert model.pointers == ()
        assert model.max_up_from(0) == 1
        assert model.regulation_predecessors(0).size == 0

    def test_zero_threshold_all_distinct(self):
        model = RWaveModel(np.array([3.0, 1.0, 2.0]), 0.0)
        # every adjacent sorted pair is a bordering pointer
        assert len(model.pointers) == 2
        assert model.max_up_from(1) == 3  # 1 -> 2 -> 3

    def test_zero_threshold_with_ties(self):
        model = RWaveModel(np.array([1.0, 1.0, 2.0]), 0.0)
        # the tied pair is never regulated (strict inequality)
        assert model.max_up_from(0) == 2
        assert model.max_up_from(2) == 1

    def test_huge_threshold_no_pointers(self, running_example):
        model = build_rwave(running_example, "g1", 1.0)
        assert model.pointers == ()
        for c in range(10):
            assert model.max_up_from(c) == 1


class TestWindowEdges:
    def test_all_identical_scores(self):
        genes = np.arange(10)
        scores = np.zeros(10)
        windows = coherent_gene_windows(genes, scores, 0.0, 5)
        assert len(windows) == 1
        assert windows[0].tolist() == list(range(10))

    def test_all_scores_non_finite(self):
        genes = np.array([0, 1])
        scores = np.array([np.nan, np.inf])
        assert coherent_gene_windows(genes, scores, 1.0, 1) == []


class TestParameterInteractions:
    def test_min_conditions_equals_two_baseline_only(self, running_example):
        """Chains of exactly two conditions have trivially coherent H=1."""
        result = mine_reg_clusters(
            running_example,
            min_genes=3,
            min_conditions=2,
            gamma=0.15,
            epsilon=0.0,
        )
        assert result.clusters
        for cluster in result.clusters:
            if cluster.n_conditions == 2:
                # all members regulated on the single pair
                assert cluster.n_genes >= 3

    def test_epsilon_huge_accepts_any_proportions(self):
        rng = np.random.default_rng(33)
        values = rng.uniform(0, 10, size=(4, 4))
        # force a common ascending chain with regulated steps
        values[:, 0] = [0.0, 0.0, 0.0, 0.0]
        values[:, 1] = [3.0, 4.0, 5.0, 6.0]
        values[:, 2] = [6.0, 9.0, 7.0, 12.0]
        values[:, 3] = [9.0, 14.0, 9.5, 30.0]
        m = ExpressionMatrix(values)
        result = mine_reg_clusters(
            m, min_genes=4, min_conditions=4, gamma=0.05, epsilon=1e9
        )
        assert any(c.n_genes == 4 for c in result.clusters)

    def test_max_clusters_one(self, running_example):
        result = mine_reg_clusters(
            running_example,
            min_genes=2,
            min_conditions=3,
            gamma=0.15,
            epsilon=1.0,
            max_clusters=1,
        )
        assert len(result) == 1
