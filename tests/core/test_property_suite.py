"""Cross-cutting property-based tests (hypothesis) on core value objects."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import canonical_orientation, invert_chain, is_representative
from repro.core.cluster import RegCluster
from repro.core.postprocess import drop_contained, top_k
from repro.core.serialize import cluster_from_dict, cluster_to_dict

# -- strategies -------------------------------------------------------------

chains = st.lists(
    st.integers(min_value=0, max_value=15), min_size=1, max_size=6,
    unique=True,
).map(tuple)


@st.composite
def clusters(draw):
    chain = draw(chains)
    genes = draw(
        st.lists(
            st.integers(min_value=0, max_value=30),
            min_size=1,
            max_size=8,
            unique=True,
        )
    )
    split = draw(st.integers(min_value=0, max_value=len(genes)))
    return RegCluster(
        chain=chain,
        p_members=tuple(genes[:split]),
        n_members=tuple(genes[split:]),
    )


# -- serialization ----------------------------------------------------------

@given(clusters())
@settings(max_examples=200, deadline=None)
def test_cluster_serialization_round_trip(cluster):
    assert cluster_from_dict(cluster_to_dict(cluster)) == cluster


@given(clusters())
@settings(max_examples=100, deadline=None)
def test_cells_count_is_product(cluster):
    assert len(cluster.cells()) == cluster.n_genes * cluster.n_conditions


@given(clusters())
@settings(max_examples=100, deadline=None)
def test_overlap_with_self_is_one(cluster):
    assert cluster.overlap_fraction(cluster) == 1.0


# -- chains -----------------------------------------------------------------

@given(chains, st.integers(min_value=0, max_value=9),
       st.integers(min_value=0, max_value=9))
@settings(max_examples=200, deadline=None)
def test_exactly_one_orientation_representative(chain, p, n):
    forward = is_representative(chain, p, n)
    backward = is_representative(invert_chain(chain), n, p)
    if len(chain) >= 2:
        assert forward != backward
    else:
        # a single-condition chain equals its inversion; both views agree
        assert forward == (p >= n)


@given(chains, st.integers(min_value=0, max_value=9),
       st.integers(min_value=0, max_value=9))
@settings(max_examples=100, deadline=None)
def test_canonical_orientation_is_representative(chain, p, n):
    oriented, op, on = canonical_orientation(chain, p, n)
    assert is_representative(oriented, op, on)
    assert sorted(oriented) == sorted(chain)
    assert {op, on} == {p, n}


# -- post-processing --------------------------------------------------------

@given(st.lists(clusters(), max_size=8))
@settings(max_examples=100, deadline=None)
def test_drop_contained_idempotent_and_sound(cluster_list):
    kept = drop_contained(cluster_list)
    # idempotent
    assert drop_contained(kept) == kept
    # sound: nothing kept is contained in another kept cluster
    for a in kept:
        for b in kept:
            if a is not b:
                assert not (a.cells() <= b.cells())
    # complete: everything dropped is contained in something kept
    for cluster in cluster_list:
        if cluster not in kept:
            assert any(cluster.cells() <= k.cells() for k in kept)


@given(st.lists(clusters(), max_size=8), st.integers(min_value=0, max_value=10))
@settings(max_examples=100, deadline=None)
def test_top_k_returns_largest(cluster_list, k):
    picked = top_k(cluster_list, k)
    assert len(picked) == min(k, len(cluster_list))
    if picked:
        threshold = min(c.n_genes * c.n_conditions for c in picked)
        rest = [c for c in cluster_list if c not in picked]
        assert all(
            c.n_genes * c.n_conditions <= threshold for c in rest
        )
