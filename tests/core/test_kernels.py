"""Unit tests for the bit-packed regulation-pair kernel."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.kernels import DEFAULT_SLICE_CACHE, RegulationKernel
from repro.core.rwave import RWaveIndex
from repro.matrix.expression import ExpressionMatrix


def random_matrix(n_genes=23, n_conditions=11, seed=7):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n_genes, n_conditions)) * 10.0


def kernel_for(values, gamma=0.15, **kwargs):
    thresholds = gamma * (values.max(axis=1) - values.min(axis=1))
    return RegulationKernel(values, thresholds, **kwargs), thresholds


def brute_up(values, thresholds):
    """The dense Eq. 3 tensor, computed the obvious way."""
    diff = values[:, :, None] - values[:, None, :]
    return diff > thresholds[:, None, None]


class TestPackedRelation:
    def test_matches_brute_force(self):
        values = random_matrix()
        kernel, thresholds = kernel_for(values)
        expected = brute_up(values, thresholds)
        for last in range(values.shape[1]):
            np.testing.assert_array_equal(
                kernel.up_slice(last), expected[:, :, last]
            )
            np.testing.assert_array_equal(
                kernel.down_slice(last), expected[:, last, :]
            )

    def test_point_query(self):
        values = random_matrix(n_genes=5, n_conditions=6)
        kernel, thresholds = kernel_for(values)
        expected = brute_up(values, thresholds)
        for gene in range(5):
            for a in range(6):
                for b in range(6):
                    assert kernel.is_up_regulated(gene, a, b) == bool(
                        expected[gene, a, b]
                    )

    def test_non_multiple_of_eight_conditions(self):
        # The packed axis is padded to a byte boundary; padding bits must
        # never leak into the dense projections.
        for n_conditions in (3, 8, 9, 16, 17):
            values = random_matrix(n_genes=7, n_conditions=n_conditions)
            kernel, thresholds = kernel_for(values)
            expected = brute_up(values, thresholds)
            for last in range(n_conditions):
                np.testing.assert_array_equal(
                    kernel.down_slice(last), expected[:, last, :]
                )

    def test_strict_inequality_at_threshold(self):
        # A step exactly equal to the threshold is NOT up-regulation
        # (Eq. 3 is strict).
        values = np.array([[0.0, 1.0, 2.0]])
        thresholds = np.array([1.0])
        kernel = RegulationKernel(values, thresholds)
        assert not kernel.is_up_regulated(0, 1, 0)  # diff == 1.0
        assert kernel.is_up_regulated(0, 2, 0)  # diff == 2.0

    def test_chunked_pack_matches_unchunked(self, monkeypatch):
        import repro.core.kernels as kernels_module

        values = random_matrix(n_genes=40, n_conditions=9, seed=3)
        kernel, thresholds = kernel_for(values)
        monkeypatch.setattr(kernels_module, "_PACK_CHUNK", 7)
        chunked = RegulationKernel(values, thresholds)
        np.testing.assert_array_equal(kernel._packed, chunked._packed)


class TestValidation:
    def test_rejects_non_matrix(self):
        with pytest.raises(ValueError, match="2-D"):
            RegulationKernel(np.zeros(4), np.zeros(4))

    def test_rejects_threshold_shape(self):
        with pytest.raises(ValueError, match="shape"):
            RegulationKernel(np.zeros((3, 4)), np.zeros(4))

    def test_rejects_negative_thresholds(self):
        with pytest.raises(ValueError, match="non-negative"):
            RegulationKernel(np.zeros((2, 3)), np.array([0.1, -0.1]))

    def test_rejects_negative_cache(self):
        with pytest.raises(ValueError, match="slice_cache"):
            RegulationKernel(np.zeros((2, 3)), np.zeros(2), slice_cache=-1)

    def test_condition_out_of_range(self):
        kernel, _ = kernel_for(random_matrix(5, 4))
        with pytest.raises(IndexError, match="out of range"):
            kernel.up_slice(4)
        with pytest.raises(IndexError, match="out of range"):
            kernel.down_slice(-1)


class TestSliceCache:
    def test_hit_returns_same_array(self):
        kernel, _ = kernel_for(random_matrix())
        first = kernel.up_slice(2)
        assert kernel.up_slice(2) is first

    def test_lru_eviction(self):
        kernel, _ = kernel_for(random_matrix(8, 10), slice_cache=2)
        kernel.up_slice(0)
        kernel.up_slice(1)
        kernel.up_slice(2)  # evicts 0
        assert kernel.cache_info() == (2, 0)
        zero = kernel.up_slice(0)  # rebuilt, evicts 1
        assert kernel.up_slice(0) is zero

    def test_cache_disabled(self):
        kernel, _ = kernel_for(random_matrix(8, 10), slice_cache=0)
        first = kernel.up_slice(3)
        second = kernel.up_slice(3)
        assert first is not second
        np.testing.assert_array_equal(first, second)
        assert kernel.cache_info() == (0, 0)

    def test_clear_cache(self):
        kernel, _ = kernel_for(random_matrix())
        kernel.up_slice(0)
        kernel.down_slice(0)
        assert kernel.cache_info() == (1, 1)
        kernel.clear_cache()
        assert kernel.cache_info() == (0, 0)

    def test_default_covers_typical_condition_counts(self):
        assert DEFAULT_SLICE_CACHE >= 64


class TestIntrospectionAndPickle:
    def test_shape_and_nbytes(self):
        kernel, _ = kernel_for(random_matrix(10, 9))
        assert kernel.shape == (10, 9)
        assert kernel.nbytes == 10 * 9 * ((9 + 7) // 8)
        assert "10x9" in repr(kernel)

    def test_pickle_round_trip_drops_dense_caches(self):
        values = random_matrix()
        kernel, _ = kernel_for(values)
        kernel.up_slice(1)
        kernel.down_slice(2)
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone.cache_info() == (0, 0)
        np.testing.assert_array_equal(clone._packed, kernel._packed)
        for last in range(values.shape[1]):
            np.testing.assert_array_equal(
                clone.up_slice(last), kernel.up_slice(last)
            )


class TestRWaveIntegration:
    def test_lazy_build_and_attach(self, running_example):
        index = RWaveIndex(running_example, 0.15)
        assert not index.has_kernel
        kernel = index.kernel
        assert index.has_kernel
        assert index.kernel is kernel

        other = RWaveIndex(running_example, 0.15)
        other.attach_kernel(kernel)
        assert other.kernel is kernel

    def test_attach_rejects_shape_mismatch(self, running_example):
        index = RWaveIndex(running_example, 0.15)
        small = ExpressionMatrix(np.zeros((2, 3)))
        foreign = RWaveIndex(small, 0.15).kernel
        with pytest.raises(ValueError, match="shape"):
            index.attach_kernel(foreign)

    def test_index_pickle_excludes_kernel(self, running_example):
        index = RWaveIndex(running_example, 0.15)
        index.kernel  # force the lazy build
        clone = pickle.loads(pickle.dumps(index))
        assert not clone.has_kernel

    def test_kernel_agrees_with_index_thresholds(self, running_example):
        index = RWaveIndex(running_example, 0.15)
        expected = brute_up(
            np.asarray(running_example.values), index.thresholds
        )
        for last in range(running_example.n_conditions):
            np.testing.assert_array_equal(
                index.kernel.up_slice(last), expected[:, :, last]
            )
