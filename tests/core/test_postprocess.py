"""Unit tests for cluster post-processing (merge / filter passes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cluster import RegCluster
from repro.core.miner import MiningParameters, RegClusterMiner
from repro.core.postprocess import drop_contained, merge_overlapping, top_k
from repro.core.validate import is_valid_reg_cluster
from repro.matrix.expression import ExpressionMatrix


def family_matrix():
    """Four affine genes on a 6-condition ramp plus two noise genes."""
    base = np.array([0.0, 3.0, 6.0, 9.0, 12.0, 15.0])
    rng = np.random.default_rng(8)
    rows = [
        base,
        2.0 * base + 1.0,
        0.5 * base + 4.0,
        -base + 15.0,
        rng.uniform(0, 15, 6),
        rng.uniform(0, 15, 6),
    ]
    return ExpressionMatrix(np.asarray(rows))


class TestDropContained:
    def test_subset_removed(self):
        big = RegCluster(chain=(0, 1, 2), p_members=(0, 1, 2))
        small = RegCluster(chain=(0, 1), p_members=(0, 1))
        assert drop_contained([small, big]) == [big]

    def test_partial_overlap_kept(self):
        a = RegCluster(chain=(0, 1), p_members=(0, 1))
        b = RegCluster(chain=(1, 2), p_members=(1, 2))
        assert set(drop_contained([a, b])) == {a, b}

    def test_empty(self):
        assert drop_contained([]) == []


class TestTopK:
    def test_ranking_by_cells(self):
        big = RegCluster(chain=(0, 1, 2), p_members=(0, 1, 2))
        small = RegCluster(chain=(3, 4), p_members=(5,))
        assert top_k([small, big], 1) == [big]
        assert top_k([small, big], 5) == [big, small]

    def test_negative_k(self):
        with pytest.raises(ValueError):
            top_k([], -1)


class TestMergeOverlapping:
    def test_merges_subchain_clusters(self):
        """Mining a 6-condition family with MinC=5 yields the 6-chain and
        its 5-chain prefixes; merging collapses them into one cluster."""
        matrix = family_matrix()
        params = MiningParameters(
            min_genes=4, min_conditions=5, gamma=0.15, epsilon=0.01
        )
        result = RegClusterMiner(matrix, params).mine()
        assert len(result) > 1  # overlapping sub-chain clusters exist
        merged = merge_overlapping(
            result.clusters, matrix, params, min_overlap=0.5
        )
        assert len(merged) < len(result)
        for cluster in merged:
            assert is_valid_reg_cluster(matrix, cluster, params)
        # the full-length cluster survives
        assert any(c.n_conditions == 6 for c in merged)

    def test_disjoint_clusters_untouched(self):
        matrix = family_matrix()
        params = MiningParameters(
            min_genes=2, min_conditions=2, gamma=0.1, epsilon=0.1
        )
        a = RegCluster(chain=(0, 2), p_members=(0, 1))
        b = RegCluster(chain=(3, 5), p_members=(0, 1))
        merged = merge_overlapping([a, b], matrix, params)
        assert set(merged) == {a, b}

    def test_invalid_merge_rejected(self):
        """Clusters whose union violates coherence are left separate."""
        base = np.array([0.0, 3.0, 6.0, 9.0])
        skew = np.array([0.0, 4.0, 8.0, 30.0])
        matrix = ExpressionMatrix([base, base + 1.0, skew, skew + 1.0])
        params = MiningParameters(
            min_genes=2, min_conditions=4, gamma=0.1, epsilon=0.05
        )
        a = RegCluster(chain=(0, 1, 2, 3), p_members=(0, 1))
        b = RegCluster(chain=(0, 1, 2, 3), p_members=(2, 3))
        assert is_valid_reg_cluster(matrix, a, params)
        assert is_valid_reg_cluster(matrix, b, params)
        merged = merge_overlapping([a, b], matrix, params, min_overlap=0.3)
        assert set(merged) == {a, b}

    def test_min_overlap_validation(self):
        matrix = family_matrix()
        params = MiningParameters(
            min_genes=2, min_conditions=2, gamma=0.1, epsilon=0.1
        )
        with pytest.raises(ValueError, match="min_overlap"):
            merge_overlapping([], matrix, params, min_overlap=0.0)
