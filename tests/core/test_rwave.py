"""Unit tests for the RWave^gamma model on the paper's running example.

Pins the structure of Figure 3 and the Lemma 3.1 worked example
(predecessors of c6 for g1).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.regulation import regulation_matrix
from repro.core.rwave import RegulationPointer, RWaveIndex, RWaveModel, build_rwave
from repro.matrix.expression import ExpressionMatrix


def names(matrix, ids):
    return [matrix.condition_names[c] for c in ids]


class TestConstruction:
    def test_order_is_non_descending(self, running_example):
        for gene in range(3):
            model = build_rwave(running_example, gene, 0.15)
            assert np.all(np.diff(model.sorted_values) >= 0)

    def test_g1_order(self, running_example):
        model = build_rwave(running_example, "g1", 0.15)
        assert names(running_example, model.order) == [
            "c7", "c2", "c9", "c10", "c5", "c8", "c1", "c4", "c6", "c3",
        ]

    def test_g2_order(self, running_example):
        model = build_rwave(running_example, "g2", 0.15)
        assert names(running_example, model.order) == [
            "c2", "c3", "c1", "c10", "c5", "c9", "c8", "c4", "c6", "c7",
        ]

    def test_pointer_validation(self):
        with pytest.raises(ValueError, match="tail"):
            RegulationPointer(tail=3, head=3)

    def test_rejects_2d_profile(self):
        with pytest.raises(ValueError, match="single profile"):
            RWaveModel(np.zeros((2, 2)), 1.0)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError, match="threshold"):
            RWaveModel(np.zeros(3), -1.0)

    def test_repr(self, running_example):
        model = build_rwave(running_example, 0, 0.15)
        assert "pointers=4" in repr(model)


class TestPointerSemantics:
    """Definition 3.1: pointers mark bordering regulated pairs,
    non-embedded."""

    @pytest.mark.parametrize("gene", [0, 1, 2])
    def test_every_pointer_is_regulated(self, running_example, gene):
        model = build_rwave(running_example, gene, 0.15)
        values = model.sorted_values
        for pointer in model.pointers:
            # every position <= tail against every position >= head
            left = values[: pointer.tail + 1]
            right = values[pointer.head :]
            assert right.min() - left.max() > model.threshold

    @pytest.mark.parametrize("gene", [0, 1, 2])
    def test_no_embedded_pointers(self, running_example, gene):
        model = build_rwave(running_example, gene, 0.15)
        pointers = model.pointers
        for a in pointers:
            for b in pointers:
                if a is b:
                    continue
                embedded = a.tail >= b.tail and a.head <= b.head
                assert not embedded, f"{a} embedded in {b}"

    @pytest.mark.parametrize("gene", [0, 1, 2])
    def test_pointers_are_minimal_borders(self, running_example, gene):
        """Shrinking a pointer by one position breaks the regulation."""
        model = build_rwave(running_example, gene, 0.15)
        values = model.sorted_values
        for pointer in model.pointers:
            assert (
                values[pointer.head] - values[pointer.tail]
                > model.threshold
            )
            # the pair one step tighter must NOT be regulated, otherwise a
            # pointer embedded in this one would exist
            if pointer.head - pointer.tail > 1:
                assert (
                    values[pointer.head] - values[pointer.tail + 1]
                    <= model.threshold
                    or values[pointer.head - 1] - values[pointer.tail]
                    <= model.threshold
                )


class TestLemmaQueries:
    def test_paper_predecessors_of_c6(self, running_example):
        """Lemma 3.1 worked example: predecessors of c6 for g1."""
        model = build_rwave(running_example, "g1", 0.15)
        c6 = running_example.condition_index("c6")
        predecessors = set(names(running_example, model.regulation_predecessors(c6)))
        assert predecessors == {"c7", "c2", "c10", "c9", "c8", "c5"}

    def test_paper_no_successors_of_c6(self, running_example):
        model = build_rwave(running_example, "g1", 0.15)
        c6 = running_example.condition_index("c6")
        assert model.regulation_successors(c6).size == 0

    @pytest.mark.parametrize("gene", [0, 1, 2])
    def test_queries_match_brute_force(self, running_example, gene):
        """Lemma 3.1 exactness against the O(n^2) regulation table."""
        model = build_rwave(running_example, gene, 0.15)
        table = regulation_matrix(running_example, gene, 0.15)
        n = running_example.n_conditions
        for condition in range(n):
            expected_preds = {
                b for b in range(n) if table[condition, b] == 1
            }
            expected_succs = {
                b for b in range(n) if table[b, condition] == 1
            }
            assert set(model.regulation_predecessors(condition).tolist()) == (
                expected_preds
            )
            assert set(model.regulation_successors(condition).tolist()) == (
                expected_succs
            )

    def test_is_up_regulated(self, running_example):
        model = build_rwave(running_example, "g1", 0.15)
        c3 = running_example.condition_index("c3")
        c7 = running_example.condition_index("c7")
        assert model.is_up_regulated(c3, c7)
        assert not model.is_up_regulated(c7, c3)


class TestChainTables:
    @pytest.mark.parametrize("gene", [0, 1, 2])
    def test_max_chain_matches_exhaustive(self, running_example, gene):
        """The greedy chain-length tables equal exhaustive DFS lengths."""
        model = build_rwave(running_example, gene, 0.15)
        table = regulation_matrix(running_example, gene, 0.15)
        n = running_example.n_conditions

        cache = {}

        def longest_up(cond):
            key = (gene, cond)
            if key in cache:
                return cache[key]
            succs = [b for b in range(n) if table[b, cond] == 1]
            result = 1 + max((longest_up(s) for s in succs), default=0)
            cache[key] = result
            return result

        for cond in range(n):
            assert model.max_up_from(cond) == longest_up(cond)

    def test_down_is_mirror_of_up(self, running_example):
        """max_down of gene equals max_up of the negated profile."""
        for gene in range(3):
            row = running_example.values[gene]
            threshold = 0.15 * (row.max() - row.min())
            model = RWaveModel(row, threshold)
            mirror = RWaveModel(-row, threshold)
            for cond in range(running_example.n_conditions):
                assert model.max_down_from(cond) == mirror.max_up_from(cond)


class TestIndex:
    def test_index_tables_match_models(self, running_example):
        index = RWaveIndex(running_example, 0.15)
        assert len(index) == 3
        for gene, model in enumerate(index.models):
            for cond in range(running_example.n_conditions):
                assert index.max_up[gene, cond] == model.max_up_from(cond)
                assert index.max_down[gene, cond] == model.max_down_from(cond)

    def test_model_lookup_by_name(self, running_example):
        index = RWaveIndex(running_example, 0.15)
        assert index.model("g2") is index.models[1]


class TestRendering:
    def test_render_contains_conditions_and_arrows(self, running_example):
        model = build_rwave(running_example, "g1", 0.15)
        text = model.render(running_example.condition_names)
        assert "c7" in text and "c3" in text
        assert ">" in text and "^" in text

    def test_render_default_names(self, running_example):
        model = build_rwave(running_example, "g1", 0.15)
        assert "c7" in model.render()
