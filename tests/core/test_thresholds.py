"""Unit tests for the alternative regulation-threshold strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.miner import MiningParameters, RegClusterMiner, mine_reg_clusters
from repro.core.regulation import gene_thresholds
from repro.core.thresholds import (
    closest_pair_average,
    constant,
    mean_fraction,
    normalized_std,
    range_fraction,
    resolve_strategy,
)
from repro.matrix.expression import ExpressionMatrix


class TestStrategies:
    def test_range_fraction_matches_eq4(self, running_example):
        assert np.allclose(
            range_fraction(running_example, 0.15),
            gene_thresholds(running_example, 0.15),
        )

    def test_closest_pair_average(self):
        m = ExpressionMatrix([[0.0, 1.0, 3.0, 10.0]])
        # sorted gaps: 1, 2, 7 -> mean 10/3
        assert closest_pair_average(m, 1.0).tolist() == pytest.approx(
            [10.0 / 3.0]
        )

    def test_normalized_std(self):
        m = ExpressionMatrix([[0.0, 2.0], [5.0, 5.0]])
        out = normalized_std(m, 2.0)
        assert out[0] == pytest.approx(2.0)
        assert out[1] == 0.0

    def test_mean_fraction(self):
        m = ExpressionMatrix([[-4.0, -2.0]])
        assert mean_fraction(m, 0.5).tolist() == [1.5]

    def test_constant(self):
        m = ExpressionMatrix([[0.0, 1.0], [2.0, 3.0]])
        assert constant(m, 7.0).tolist() == [7.0, 7.0]

    def test_negative_scale_rejected(self, running_example):
        for strategy in (range_fraction, closest_pair_average,
                         normalized_std, mean_fraction, constant):
            with pytest.raises(ValueError):
                strategy(running_example, -0.1)

    def test_resolve_strategy(self):
        assert resolve_strategy("normalized_std") is normalized_std
        with pytest.raises(ValueError, match="unknown threshold"):
            resolve_strategy("bogus")


class TestMinerIntegration:
    def test_custom_thresholds_change_mining(self, running_example):
        params = MiningParameters(
            min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
        )
        default = RegClusterMiner(running_example, params).mine()
        # an absurdly high constant threshold regulates nothing
        blocked = RegClusterMiner(
            running_example,
            params,
            thresholds=constant(running_example, 1000.0),
        ).mine()
        assert len(default) == 1
        assert len(blocked) == 0

    def test_explicit_eq4_thresholds_equal_default(self, running_example):
        params = MiningParameters(
            min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
        )
        default = RegClusterMiner(running_example, params).mine().clusters
        explicit = (
            RegClusterMiner(
                running_example,
                params,
                thresholds=range_fraction(running_example, 0.15),
            )
            .mine()
            .clusters
        )
        assert default == explicit

    def test_wrapper_accepts_thresholds(self, running_example):
        result = mine_reg_clusters(
            running_example,
            min_genes=3,
            min_conditions=5,
            gamma=0.15,
            epsilon=0.1,
            thresholds=normalized_std(running_example, 0.4),
        )
        assert len(result) >= 1

    def test_bad_threshold_shape_rejected(self, running_example):
        params = MiningParameters(
            min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
        )
        with pytest.raises(ValueError, match="shape"):
            RegClusterMiner(
                running_example, params, thresholds=np.zeros(5)
            )
        with pytest.raises(ValueError, match="non-negative"):
            RegClusterMiner(
                running_example, params, thresholds=np.full(3, -1.0)
            )
