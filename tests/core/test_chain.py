"""Unit tests for regulation chains and the representativeness rule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chain import (
    canonical_orientation,
    gene_matches_chain,
    invert_chain,
    is_representative,
    match_chain_members,
)
from repro.core.regulation import gene_thresholds


class TestInvert:
    def test_invert(self):
        assert invert_chain((6, 8, 4, 0, 2)) == (2, 0, 4, 8, 6)

    def test_involution(self):
        chain = (3, 1, 4)
        assert invert_chain(invert_chain(chain)) == chain


class TestRepresentative:
    def test_majority_wins(self):
        assert is_representative((0, 1, 2), 3, 1)
        assert not is_representative((0, 1, 2), 1, 3)

    def test_tie_breaks_on_larger_first_condition(self):
        """Paper prose: the chain starting with the larger condition id is
        representative on a tie."""
        assert is_representative((5, 1, 2), 2, 2)
        assert not is_representative((2, 1, 5), 2, 2)

    def test_exactly_one_orientation_representative(self):
        chain = (4, 7, 1)
        for p, n in [(3, 1), (1, 3), (2, 2)]:
            forward = is_representative(chain, p, n)
            backward = is_representative(invert_chain(chain), n, p)
            assert forward != backward

    def test_paper_example(self):
        """c7 <- c9 <- c5 <- c1 <- c3 with 2 p-members vs 1 n-member."""
        chain = (6, 8, 4, 0, 2)
        assert is_representative(chain, 2, 1)
        assert not is_representative(invert_chain(chain), 1, 2)

    def test_canonical_orientation_flips(self):
        chain = (0, 1, 2)
        flipped, p, n = canonical_orientation(chain, 1, 3)
        assert flipped == (2, 1, 0)
        assert (p, n) == (3, 1)
        same, p2, n2 = canonical_orientation(chain, 3, 1)
        assert same == chain and (p2, n2) == (3, 1)


class TestGeneMatching:
    def test_paper_chain_membership(self, running_example):
        """g1 and g3 ascend along c7..c3; g2 descends."""
        chain = running_example.condition_indices(
            ["c7", "c9", "c5", "c1", "c3"]
        )
        thresholds = gene_thresholds(running_example, 0.15)
        values = running_example.values
        assert gene_matches_chain(values[0], thresholds[0], chain)
        assert gene_matches_chain(values[2], thresholds[2], chain)
        assert not gene_matches_chain(values[1], thresholds[1], chain)
        inverted = invert_chain(tuple(chain))
        assert gene_matches_chain(values[1], thresholds[1], inverted)

    def test_single_condition_always_matches(self, running_example):
        assert gene_matches_chain(running_example.values[0], 4.5, (3,))

    def test_match_chain_members_split(self, running_example):
        chain = tuple(
            running_example.condition_indices(["c7", "c9", "c5", "c1", "c3"])
        )
        thresholds = gene_thresholds(running_example, 0.15)
        p, n = match_chain_members(
            running_example.values,
            thresholds,
            chain,
            np.arange(3, dtype=np.intp),
        )
        assert p.tolist() == [0, 2]
        assert n.tolist() == [1]

    def test_non_members_dropped(self, running_example):
        # On conditions where g2 is flat-ish it joins neither orientation.
        chain = tuple(running_example.condition_indices(["c8", "c4"]))
        thresholds = gene_thresholds(running_example, 0.15)
        p, n = match_chain_members(
            running_example.values,
            thresholds,
            chain,
            np.arange(3, dtype=np.intp),
        )
        assert 1 not in set(p.tolist()) | set(n.tolist())

    def test_single_condition_chain_returns_all_as_p(self, running_example):
        thresholds = gene_thresholds(running_example, 0.15)
        p, n = match_chain_members(
            running_example.values, thresholds, (0,), np.arange(3)
        )
        assert p.tolist() == [0, 1, 2]
        assert n.size == 0

    def test_threshold_strictness(self):
        """A step exactly at the threshold does not count as regulated."""
        row = np.array([0.0, 5.0, 10.0])
        assert not gene_matches_chain(row, 5.0, (0, 1, 2))
        assert gene_matches_chain(row, 4.9, (0, 1, 2))
