"""Unit tests for the RegCluster value object."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cluster import RegCluster, cell_set


@pytest.fixture
def paper_cluster(running_example):
    """The Figure 2 cluster: chain c7<-c9<-c5<-c1<-c3, p={g1,g3}, n={g2}."""
    chain = tuple(
        running_example.condition_indices(["c7", "c9", "c5", "c1", "c3"])
    )
    return RegCluster(chain=chain, p_members=(0, 2), n_members=(1,))


class TestInvariants:
    def test_members_sorted_and_deduplicated(self):
        c = RegCluster(chain=(1, 0), p_members=(5, 3), n_members=(4,))
        assert c.p_members == (3, 5)
        assert c.genes == (3, 4, 5)

    def test_duplicate_chain_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            RegCluster(chain=(1, 1), p_members=(0,))

    def test_overlapping_membership_rejected(self):
        with pytest.raises(ValueError, match="both"):
            RegCluster(chain=(0, 1), p_members=(2,), n_members=(2,))

    def test_shape(self, paper_cluster):
        assert paper_cluster.shape == (3, 5)
        assert paper_cluster.n_genes == 3
        assert paper_cluster.n_conditions == 5

    def test_orientation(self, paper_cluster):
        assert paper_cluster.orientation(0) == 1
        assert paper_cluster.orientation(1) == -1
        with pytest.raises(KeyError):
            paper_cluster.orientation(9)

    def test_inverted_chain(self, paper_cluster):
        assert paper_cluster.inverted_chain == tuple(
            reversed(paper_cluster.chain)
        )

    def test_hashable_value_semantics(self):
        a = RegCluster(chain=(0, 1), p_members=(1, 2))
        b = RegCluster(chain=(0, 1), p_members=(2, 1))
        assert a == b
        assert len({a, b}) == 1


class TestCells:
    def test_cells(self):
        c = RegCluster(chain=(3, 1), p_members=(0,), n_members=(2,))
        assert c.cells() == {(0, 3), (0, 1), (2, 3), (2, 1)}

    def test_overlap_fraction(self):
        a = RegCluster(chain=(0, 1), p_members=(0, 1))
        b = RegCluster(chain=(1, 2), p_members=(1, 2))
        # a covers {0,1}x{0,1}; b covers {1,2}x{1,2}; shared cell: (1,1)
        assert a.overlap_fraction(b) == pytest.approx(0.25)

    def test_cell_set_union(self):
        a = RegCluster(chain=(0,), p_members=(0,))
        b = RegCluster(chain=(1,), p_members=(0,))
        assert cell_set([a, b]) == {(0, 0), (0, 1)}


class TestMaterialization:
    def test_submatrix_in_chain_order(self, running_example, paper_cluster):
        sub = paper_cluster.submatrix(running_example)
        assert sub.condition_names == ("c7", "c9", "c5", "c1", "c3")
        assert sub.gene_names == ("g1", "g2", "g3")
        # g1 ascends along the chain
        assert np.all(np.diff(sub.values[0]) > 0)
        # g2 descends
        assert np.all(np.diff(sub.values[1]) < 0)

    def test_h_profiles_identical_across_members(
        self, running_example, paper_cluster
    ):
        profiles = paper_cluster.h_profiles(running_example)
        assert profiles[0] == pytest.approx([1.0, 0.5, 1.0, 0.5])
        assert profiles[1] == pytest.approx(profiles[0])
        assert profiles[2] == pytest.approx(profiles[0])

    def test_affine_fits_signs(self, running_example, paper_cluster):
        fits = paper_cluster.affine_fits(running_example)
        assert fits[0].scaling == pytest.approx(1.0)
        assert fits[2].scaling > 0  # fellow p-member
        assert fits[1].scaling < 0  # n-member
        assert fits[1].scaling == pytest.approx(-1.0)
        assert fits[1].shifting == pytest.approx(30.0)

    def test_affine_fits_custom_reference(self, running_example, paper_cluster):
        fits = paper_cluster.affine_fits(running_example, reference=2)
        assert fits[0].scaling == pytest.approx(2.5)
        assert fits[0].shifting == pytest.approx(-5.0)

    def test_affine_fits_requires_p_member_anchor(self):
        cluster = RegCluster(chain=(0, 1), p_members=(), n_members=(0, 1))
        with pytest.raises(ValueError, match="p-members"):
            cluster.affine_fits(None)  # matrix unused before the raise


class TestDescribe:
    def test_describe_with_matrix(self, running_example, paper_cluster):
        text = paper_cluster.describe(running_example)
        assert "c7 <- c9 <- c5 <- c1 <- c3" in text
        assert "g1, g3" in text
        assert "g2" in text

    def test_describe_without_matrix(self, paper_cluster):
        text = str(paper_cluster)
        assert "3 genes x 5 conditions" in text
