"""Citation scanner and PAPER.md inventory tests."""

from __future__ import annotations

from repro.analysis.paper import (
    PaperReferences,
    load_paper_references,
    scan_citations,
)


class TestScanCitations:
    def test_basic_forms(self):
        text = "See Eq. 7, Lemma 3.2, Definition 3.1, Fig. 6 and Table 2."
        found = set(scan_citations(text))
        assert ("eq", "7") in found
        assert ("lemma", "3.2") in found
        assert ("definition", "3.1") in found
        assert ("figure", "6") in found
        assert ("table", "2") in found

    def test_long_forms_normalize(self):
        found = set(scan_citations("Equation 4 and Figure 2 and Section 5.2"))
        assert found == {("eq", "4"), ("figure", "2"), ("section", "5.2")}

    def test_ranges_expand(self):
        found = set(scan_citations("Eqs. 3-5"))
        assert found == {("eq", "3"), ("eq", "4"), ("eq", "5")}

    def test_lists_expand(self):
        found = set(scan_citations("Figs. 3, 4 and 6"))
        assert found == {("figure", "3"), ("figure", "4"), ("figure", "6")}

    def test_section_sign(self):
        assert set(scan_citations("see §5.2")) == {("section", "5.2")}

    def test_plain_prose_yields_nothing(self):
        assert list(scan_citations("genes and conditions, 42 of them")) == []


class TestPaperReferences:
    def test_membership(self):
        refs = PaperReferences(frozenset({("eq", "7")}), source=None)
        assert ("eq", "7") in refs
        assert ("eq", "8") not in refs

    def test_section_major_fallback(self):
        refs = PaperReferences(frozenset({("section", "5")}), source=None)
        assert ("section", "5.2") in refs
        assert ("section", "6.1") not in refs

    def test_len(self):
        assert len(PaperReferences(frozenset(), source=None)) == 0


class TestLoadPaperReferences:
    def test_missing_file_gives_empty_inventory(self, tmp_path):
        refs = load_paper_references(tmp_path / "PAPER.md")
        assert len(refs) == 0
        assert refs.source is None

    def test_walk_up_finds_paper(self, tmp_path):
        (tmp_path / "PAPER.md").write_text("Eq. 1 only.", encoding="utf-8")
        nested = tmp_path / "src" / "repro"
        nested.mkdir(parents=True)
        refs = load_paper_references(search_from=nested)
        assert ("eq", "1") in refs
        assert refs.source == tmp_path / "PAPER.md"

    def test_repo_inventory_covers_the_code_citations(self):
        """The real PAPER.md must satisfy the artifacts the paper defines."""
        refs = load_paper_references(search_from=None)
        if len(refs) == 0:  # running outside the repo checkout
            return
        for citation in [
            ("eq", "3"),
            ("eq", "4"),
            ("eq", "7"),
            ("lemma", "3.1"),
            ("lemma", "3.2"),
            ("definition", "3.1"),
            ("definition", "3.2"),
        ]:
            assert citation in refs
