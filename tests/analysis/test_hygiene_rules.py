"""RL32x/RL33x resource, exception and API-drift rule tests."""

from __future__ import annotations

import textwrap

from repro.analysis.framework import analyze_paths
from repro.analysis.hygiene import (
    DocstringSignatureDriftRule,
    SwallowedCheckpointErrorRule,
    UnmanagedResourceRule,
    documented_params,
)


def write_tree(tmp_path, files):
    for relative, text in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return tmp_path


def run_rules(tmp_path, *rules):
    report = analyze_paths([tmp_path], list(rules))
    return report.violations


# ---------------------------------------------------------------- RL320


def test_rl320_flags_leaked_handle(tmp_path):
    write_tree(
        tmp_path,
        {
            "io_mod.py": """
                def read_header(path):
                    handle = open(path)
                    return handle.readline()
            """,
        },
    )
    violations = run_rules(tmp_path, UnmanagedResourceRule())
    assert len(violations) == 1
    assert violations[0].rule_id == "RL320"


def test_rl320_with_and_finally_are_clean(tmp_path):
    write_tree(
        tmp_path,
        {
            "io_mod.py": """
                def read_all(path):
                    with open(path) as handle:
                        return handle.read()

                def read_guarded(path):
                    handle = open(path)
                    try:
                        return handle.read()
                    finally:
                        handle.close()
            """,
        },
    )
    assert run_rules(tmp_path, UnmanagedResourceRule()) == []


def test_rl320_class_owned_handle_with_close_is_clean(tmp_path):
    write_tree(
        tmp_path,
        {
            "sink.py": """
                class Sink:
                    def __init__(self, path):
                        self._stream = open(path, "a")

                    def close(self):
                        self._stream.close()
            """,
        },
    )
    # The class owns the handle and exposes close() — lifetime is
    # managed by the owner, not the opening statement.
    assert run_rules(tmp_path, UnmanagedResourceRule()) == []


# ---------------------------------------------------------------- RL321


def test_rl321_flags_swallowed_atomic_write_error(tmp_path):
    write_tree(
        tmp_path,
        {
            "ckpt.py": """
                import os

                def checkpoint(tmp, final, data):
                    try:
                        tmp.write_text(data)
                        os.replace(tmp, final)
                    except OSError:
                        pass
            """,
        },
    )
    violations = run_rules(tmp_path, SwallowedCheckpointErrorRule())
    assert len(violations) == 1
    assert violations[0].rule_id == "RL321"


def test_rl321_logged_handler_is_clean(tmp_path):
    write_tree(
        tmp_path,
        {
            "ckpt.py": """
                import logging
                import os

                log = logging.getLogger(__name__)

                def checkpoint(tmp, final, data):
                    try:
                        tmp.write_text(data)
                        os.replace(tmp, final)
                    except OSError:
                        log.warning("checkpoint failed")
            """,
        },
    )
    assert run_rules(tmp_path, SwallowedCheckpointErrorRule()) == []


# ---------------------------------------------------------------- RL330


def test_rl330_flags_signature_drift(tmp_path):
    write_tree(
        tmp_path,
        {
            "api.py": '''
                def mine(matrix, gamma, min_rows):
                    """Mine patterns.

                    Parameters
                    ----------
                    matrix : ndarray
                        Expression matrix.
                    gamma : float
                        Coherence threshold.
                    min_cols : int
                        Minimum column count.
                    """
                    return matrix
            ''',
        },
    )
    violations = run_rules(tmp_path, DocstringSignatureDriftRule())
    assert len(violations) == 1
    assert violations[0].rule_id == "RL330"
    assert "min_cols" in violations[0].message
    assert "min_rows" in violations[0].message


def test_rl330_matching_docstring_is_clean(tmp_path):
    write_tree(
        tmp_path,
        {
            "api.py": '''
                def mine(matrix, gamma):
                    """Mine patterns.

                    Parameters
                    ----------
                    matrix : ndarray
                        Expression matrix.
                    gamma : float
                        Coherence threshold.
                    """
                    return matrix
            ''',
        },
    )
    assert run_rules(tmp_path, DocstringSignatureDriftRule()) == []


def test_rl330_class_docstring_checked_against_init(tmp_path):
    write_tree(
        tmp_path,
        {
            "api.py": '''
                class Miner:
                    """Pattern miner.

                    Parameters
                    ----------
                    gamma : float
                        Coherence threshold.
                    depth : int
                        Search depth.
                    """

                    def __init__(self, gamma, width):
                        self.gamma = gamma
                        self.width = width
            ''',
        },
    )
    violations = run_rules(tmp_path, DocstringSignatureDriftRule())
    assert len(violations) == 1
    assert "depth" in violations[0].message


def test_rl330_kwargs_signatures_skipped(tmp_path):
    write_tree(
        tmp_path,
        {
            "api.py": '''
                def passthrough(**kwargs):
                    """Forward options.

                    Parameters
                    ----------
                    anything : object
                        Forwarded verbatim.
                    """
                    return kwargs
            ''',
        },
    )
    assert run_rules(tmp_path, DocstringSignatureDriftRule()) == []


def test_documented_params_parses_combined_and_star_names():
    doc = """Summary.

    Parameters
    ----------
    alpha / beta : float
        Shared description.
    *args
        Extra positionals.
    **kwargs : dict
        Extra options.
    """
    assert set(documented_params(doc)) == {"alpha", "beta", "args", "kwargs"}
