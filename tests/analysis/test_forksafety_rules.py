"""RL31x fork/pickle safety rule tests."""

from __future__ import annotations

import textwrap

from repro.analysis.forksafety import (
    PostForkGlobalMutationRule,
    UnpicklableCaptureRule,
)
from repro.analysis.framework import analyze_paths


def write_tree(tmp_path, files):
    for relative, text in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return tmp_path


def run_rules(tmp_path, *rules):
    report = analyze_paths([tmp_path], list(rules))
    return report.violations


def test_rl310_flags_lock_holding_capture(tmp_path):
    write_tree(
        tmp_path,
        {
            "work.py": """
                import threading
                from concurrent.futures import ProcessPoolExecutor

                class Plan:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.steps = []

                def _run(plan):
                    return plan.steps

                def drive():
                    plan = Plan()
                    pool = ProcessPoolExecutor()
                    return pool.submit(_run, plan)
            """,
        },
    )
    violations = run_rules(tmp_path, UnpicklableCaptureRule())
    assert len(violations) == 1
    assert violations[0].rule_id == "RL310"
    assert "Plan" in violations[0].message
    assert "_lock" in violations[0].message


def test_rl310_getstate_setstate_trusted(tmp_path):
    write_tree(
        tmp_path,
        {
            "work.py": """
                import threading
                from concurrent.futures import ProcessPoolExecutor

                class Plan:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.steps = []

                    def __getstate__(self):
                        state = self.__dict__.copy()
                        del state["_lock"]
                        return state

                    def __setstate__(self, state):
                        self.__dict__.update(state)
                        self._lock = threading.Lock()

                def _run(plan):
                    return plan.steps

                def drive():
                    plan = Plan()
                    pool = ProcessPoolExecutor()
                    return pool.submit(_run, plan)
            """,
        },
    )
    assert run_rules(tmp_path, UnpicklableCaptureRule()) == []


def test_rl310_plain_values_are_clean(tmp_path):
    write_tree(
        tmp_path,
        {
            "work.py": """
                from concurrent.futures import ProcessPoolExecutor

                def _run(start, width):
                    return start + width

                def drive(starts):
                    pool = ProcessPoolExecutor()
                    return [pool.submit(_run, s, 4) for s in starts]
            """,
        },
    )
    assert run_rules(tmp_path, UnpicklableCaptureRule()) == []


def test_rl311_flags_driver_side_global_write(tmp_path):
    write_tree(
        tmp_path,
        {
            "work.py": """
                from concurrent.futures import ProcessPoolExecutor

                _CONFIG = None

                def configure(value):
                    global _CONFIG
                    _CONFIG = value

                def _mine(start):
                    return (_CONFIG, start)

                def drive(starts):
                    configure({"width": 4})
                    pool = ProcessPoolExecutor()
                    return [pool.submit(_mine, s) for s in starts]
            """,
        },
    )
    violations = run_rules(tmp_path, PostForkGlobalMutationRule())
    assert len(violations) == 1
    assert violations[0].rule_id == "RL311"
    assert "_CONFIG" in violations[0].message


def test_rl311_initializer_propagation_is_clean(tmp_path):
    write_tree(
        tmp_path,
        {
            "work.py": """
                from concurrent.futures import ProcessPoolExecutor

                _CONFIG = None

                def _init(value):
                    global _CONFIG
                    _CONFIG = value

                def _mine(start):
                    return (_CONFIG, start)

                def drive(starts):
                    pool = ProcessPoolExecutor(initializer=_init, initargs=({},))
                    return [pool.submit(_mine, s) for s in starts]
            """,
        },
    )
    # _init runs worker-side (it is the pool initializer), so the global
    # it writes genuinely reaches the workers — no violation.
    assert run_rules(tmp_path, PostForkGlobalMutationRule()) == []
