"""SARIF 2.1.0 output structure tests."""

from __future__ import annotations

import json

from repro.analysis.__main__ import main
from repro.analysis.framework import Report, Severity, Violation
from repro.analysis.sarif import render_sarif

RACY = """\
import threading

class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = {}

    def put(self, key, value):
        with self._lock:
            self.items[key] = value

    def forget(self, key):
        self.items.pop(key, None)
"""


def test_cli_sarif_output_is_valid(tmp_path, capsys):
    target = tmp_path / "store.py"
    target.write_text(RACY, encoding="utf-8")
    code = main([str(target), "--select", "RL301", "--format", "sarif"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in payload["$schema"]
    run = payload["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "reglint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert "RL301" in rule_ids
    results = run["results"]
    assert results, "expected at least one result"
    result = results[0]
    assert result["ruleId"] == "RL301"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("store.py")
    assert location["region"]["startLine"] >= 1
    # ruleIndex must point at the right descriptor.
    assert driver["rules"][result["ruleIndex"]]["id"] == "RL301"


def test_sarif_baseline_states(tmp_path, capsys):
    target = tmp_path / "store.py"
    target.write_text(RACY, encoding="utf-8")
    baseline_path = tmp_path / "baseline.json"
    assert (
        main(
            [str(target), "--select", "RL301", "--baseline",
             str(baseline_path), "--update-baseline"]
        )
        == 0
    )
    capsys.readouterr()
    code = main(
        [str(target), "--select", "RL301", "--baseline",
         str(baseline_path), "--format", "sarif"]
    )
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    states = [r["baselineState"] for r in payload["runs"][0]["results"]]
    assert states and all(state == "unchanged" for state in states)


def test_render_sarif_without_baseline_marks_new():
    violation = Violation(
        rule_id="RL999",
        path=__import__("pathlib").Path("x.py"),
        line=3,
        column=1,
        message="synthetic",
        severity=Severity.WARNING,
    )
    report = Report(violations=[violation], files_checked=1)
    payload = render_sarif(report, [])
    result = payload["runs"][0]["results"][0]
    assert result["level"] == "warning"
    assert "baselineState" not in result
