"""Baseline gate semantics: fingerprints, partitioning and the CLI flow."""

from __future__ import annotations

import json

from repro.analysis.__main__ import main
from repro.analysis.baseline import (
    apply_baseline,
    build_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.analysis.framework import Report, Severity, Violation

RACY = """\
import threading

class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.items = {}

    def put(self, key, value):
        with self._lock:
            self.items[key] = value

    def forget(self, key):
        self.items.pop(key, None)
"""


def seed(tmp_path, body=RACY):
    target = tmp_path / "store.py"
    target.write_text(body, encoding="utf-8")
    return target


def run_cli(tmp_path, *extra):
    return main(
        [
            str(tmp_path / "store.py"),
            "--select",
            "RL301",
            "--baseline",
            str(tmp_path / "baseline.json"),
            *extra,
        ]
    )


def test_update_baseline_then_rerun_is_clean(tmp_path, capsys):
    seed(tmp_path)
    assert run_cli(tmp_path, "--update-baseline") == 0
    capsys.readouterr()
    # The baselined finding must not gate the next run.
    assert run_cli(tmp_path) == 0
    out = capsys.readouterr().out
    assert "baselined" in out


def test_moved_finding_still_matches_baseline(tmp_path, capsys):
    seed(tmp_path)
    assert run_cli(tmp_path, "--update-baseline") == 0
    # Shift every line down: the fingerprint is text-based, not
    # line-number-based, so the baselined entry must still match.
    shifted = "# leading comment\n# another comment\n" + RACY
    seed(tmp_path, shifted)
    capsys.readouterr()
    assert run_cli(tmp_path) == 0


def test_new_finding_gates_despite_baseline(tmp_path, capsys):
    seed(tmp_path)
    assert run_cli(tmp_path, "--update-baseline") == 0
    # A second, genuinely new unlocked mutation appears.
    grown = RACY + "\n    def wipe(self):\n        self.items.clear()\n"
    seed(tmp_path, grown)
    capsys.readouterr()
    assert run_cli(tmp_path) == 1
    out = capsys.readouterr().out
    assert "wipe" in out


def test_update_baseline_is_deterministic(tmp_path):
    seed(tmp_path)
    run_cli(tmp_path, "--update-baseline")
    first = (tmp_path / "baseline.json").read_bytes()
    run_cli(tmp_path, "--update-baseline")
    second = (tmp_path / "baseline.json").read_bytes()
    assert first == second
    payload = json.loads(first)
    assert payload["version"] == 1
    digests = list(payload["findings"])
    assert digests == sorted(digests)


def test_no_baseline_flag_restores_gating(tmp_path, capsys, monkeypatch):
    seed(tmp_path)
    # --no-baseline is mutually exclusive with --baseline, so exercise the
    # auto-discovery path: run from the directory holding the default
    # baseline name, then opt out of it.  Paths stay relative throughout
    # because fingerprints are keyed on the path exactly as analyzed.
    monkeypatch.chdir(tmp_path)
    assert (
        main(
            ["store.py", "--select", "RL301", "--baseline",
             "reglint-baseline.json", "--update-baseline"]
        )
        == 0
    )
    capsys.readouterr()
    assert main(["store.py", "--select", "RL301"]) == 0  # discovered
    assert main(["store.py", "--select", "RL301", "--no-baseline"]) == 1


# ------------------------------------------------------------- unit level


def make_violation(path, message, line=3):
    return Violation(
        rule_id="RL301",
        path=path,
        line=line,
        column=0,
        message=message,
        severity=Severity.ERROR,
    )


def test_fingerprint_ignores_line_numbers(tmp_path):
    a = make_violation(tmp_path / "m.py", "race", line=3)
    b = make_violation(tmp_path / "m.py", "race", line=40)
    assert fingerprint(a, "x += 1", 0) == fingerprint(b, "x += 1", 0)
    # ...but the source-line text and ordinal do matter.
    assert fingerprint(a, "y += 1", 0) != fingerprint(a, "x += 1", 0)
    assert fingerprint(a, "x += 1", 1) != fingerprint(a, "x += 1", 0)


def test_apply_baseline_partitions(tmp_path):
    source = tmp_path / "m.py"
    source.write_text("a\nb\nx += 1\ny += 1\n", encoding="utf-8")
    known = make_violation(source, "race", line=3)
    novel = make_violation(source, "other race", line=4)
    baseline = build_baseline([known])
    report = Report(violations=[known, novel], files_checked=1)
    baselined = apply_baseline(report, baseline)
    assert baselined.fresh == [novel]
    assert baselined.baselined == [known]
    assert baselined.exit_code == 1  # the novel ERROR still gates


def test_apply_without_baseline_keeps_everything_fresh(tmp_path):
    violation = make_violation(tmp_path / "m.py", "race")
    report = Report(violations=[violation], files_checked=1)
    baselined = apply_baseline(report, None)
    assert baselined.fresh == [violation]
    assert baselined.baselined == []


def test_write_and_load_roundtrip(tmp_path):
    source = tmp_path / "m.py"
    source.write_text("a\nb\nx += 1\n", encoding="utf-8")
    baseline = build_baseline([make_violation(source, "race")])
    target = tmp_path / "baseline.json"
    write_baseline(baseline, target)
    assert load_baseline(target).entries.keys() == baseline.entries.keys()


def test_load_rejects_malformed(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text("[]", encoding="utf-8")
    try:
        load_baseline(target)
    except ValueError:
        pass
    else:
        raise AssertionError("malformed baseline accepted")
