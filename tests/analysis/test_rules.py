"""Per-rule behaviour tests, each against small synthetic files."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_file, get_rule
from repro.analysis.paper import load_paper_references


def write(tmp_path, relative, text):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


def run_rule(rule_id, path, **extra):
    return analyze_file(path, [get_rule(rule_id)()], extra=extra or None)


class TestFloatEquality:
    def test_flags_the_old_coherence_form(self, tmp_path):
        """The exact pattern removed from coherence.py must be caught."""
        path = write(
            tmp_path,
            "src/repro/core/coherence.py",
            """
            def chain_h_profile(row, c1, c2):
                denominator = row[c2] - row[c1]
                if denominator == 0.0:
                    return None
                return denominator
            """,
        )
        findings = run_rule("RL101", path)
        assert [f.rule_id for f in findings] == ["RL101"]
        assert findings[0].line == 4
        assert "near_zero" in findings[0].message

    def test_flags_not_equal_too(self, tmp_path):
        path = write(
            tmp_path, "src/repro/core/x.py", "ok = value != 1.5\n"
        )
        assert len(run_rule("RL101", path)) == 1

    def test_integer_comparison_is_fine(self, tmp_path):
        path = write(tmp_path, "src/repro/core/x.py", "ok = count == 0\n")
        assert run_rule("RL101", path) == []

    def test_ordering_comparisons_are_fine(self, tmp_path):
        path = write(tmp_path, "src/repro/core/x.py", "ok = value > 0.0\n")
        assert run_rule("RL101", path) == []

    def test_test_files_exempt(self, tmp_path):
        path = write(
            tmp_path, "tests/test_values.py", "assert value == 0.5\n"
        )
        assert run_rule("RL101", path) == []

    def test_tolerance_module_exempt(self, tmp_path):
        path = write(
            tmp_path, "src/repro/core/numeric.py", "ok = x == 0.0\n"
        )
        assert run_rule("RL101", path) == []


class TestMutableDefault:
    def test_flags_dict_literal_default(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            "def f(cache={}):\n    return cache\n",
        )
        findings = run_rule("RL102", path)
        assert len(findings) == 1
        assert "f()" in findings[0].message

    def test_flags_constructor_call_and_kwonly(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            "def f(*, items=list()):\n    return items\n",
        )
        assert len(run_rule("RL102", path)) == 1

    def test_flags_lambda_default(self, tmp_path):
        path = write(tmp_path, "src/repro/core/x.py", "f = lambda a=[]: a\n")
        assert len(run_rule("RL102", path)) == 1

    def test_none_default_is_fine(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            "def f(cache=None):\n    return cache or {}\n",
        )
        assert run_rule("RL102", path) == []

    def test_tuple_default_is_fine(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            "def f(shape=(1, 2)):\n    return shape\n",
        )
        assert run_rule("RL102", path) == []


class TestBroadExcept:
    def test_flags_bare_except(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            """
            try:
                risky()
            except:
                pass
            """,
        )
        findings = run_rule("RL103", path)
        assert len(findings) == 1
        assert "bare except" in findings[0].message

    def test_flags_broad_exception_in_tuple(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            """
            try:
                risky()
            except (ValueError, Exception):
                pass
            """,
        )
        assert len(run_rule("RL103", path)) == 1

    def test_reraise_is_accepted(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            """
            try:
                risky()
            except Exception as exc:
                raise RuntimeError("context") from exc
            """,
        )
        assert run_rule("RL103", path) == []

    def test_specific_exception_is_fine(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            """
            try:
                risky()
            except ValueError:
                pass
            """,
        )
        assert run_rule("RL103", path) == []


class TestFloatAccumulation:
    def test_flags_sum_on_hot_path(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/eval/x.py",
            "total = sum(scores)\n",
        )
        findings = run_rule("RL104", path)
        assert len(findings) == 1
        assert "fsum" in findings[0].message

    def test_cold_path_not_checked(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/datasets/x.py",
            "total = sum(scores)\n",
        )
        assert run_rule("RL104", path) == []

    def test_suppression_comment_works(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            "count = sum(  # reglint: disable=RL104\n    [1, 2]\n)\n",
        )
        assert run_rule("RL104", path) == []

    def test_fsum_is_fine(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            "import math\ntotal = math.fsum(scores)\n",
        )
        assert run_rule("RL104", path) == []


class TestMissingAnnotations:
    def test_flags_unannotated_public_function(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            "def score(values, gamma=0.1):\n    return 0\n",
        )
        findings = run_rule("RL105", path)
        assert len(findings) == 1
        message = findings[0].message
        assert "score()" in message
        for name in ("values", "gamma", "return"):
            assert name in message

    def test_flags_unannotated_method(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            """
            class Miner:
                def mine(self, matrix):
                    return matrix
            """,
        )
        findings = run_rule("RL105", path)
        assert len(findings) == 1
        assert "Miner.mine()" in findings[0].message
        assert "self" not in findings[0].message.split(":")[-1]

    def test_private_helpers_skipped(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            "def _helper(x):\n    return x\n",
        )
        assert run_rule("RL105", path) == []

    def test_fully_annotated_is_clean(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            "def score(values: list, gamma: float = 0.1) -> int:\n"
            "    return 0\n",
        )
        assert run_rule("RL105", path) == []

    def test_outside_core_not_checked(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/eval/x.py",
            "def score(values):\n    return 0\n",
        )
        assert run_rule("RL105", path) == []


PAPER = """
# The paper

Equation 1 defines things; see also Eq. 2.
Lemma 3.1 and Definition 3.2 are proved in Section 3.
Fig. 4 and Table 1 show the results.
"""


class TestPrintCall:
    def test_flags_print_in_library_code(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/service/executor.py",
            """
            def drive(shard):
                print("mining shard", shard)
            """,
        )
        findings = run_rule("RL107", path)
        assert [f.rule_id for f in findings] == ["RL107"]
        assert "repro.obs.log" in findings[0].message

    def test_cli_owns_stdout(self, tmp_path):
        path = write(
            tmp_path, "src/repro/cli.py", 'print("1 reg-cluster(s)")\n'
        )
        assert run_rule("RL107", path) == []

    def test_module_main_owns_stdout(self, tmp_path):
        path = write(
            tmp_path, "src/repro/analysis/__main__.py", 'print("findings")\n'
        )
        assert run_rule("RL107", path) == []

    def test_test_files_exempt(self, tmp_path):
        path = write(
            tmp_path, "tests/test_debug.py", 'print("debugging")\n'
        )
        assert run_rule("RL107", path) == []

    def test_files_outside_repro_exempt(self, tmp_path):
        path = write(tmp_path, "scripts/tool.py", 'print("ok")\n')
        assert run_rule("RL107", path) == []

    def test_shadowed_or_method_print_is_fine(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/service/x.py",
            """
            def report(writer):
                writer.print("not the builtin")
            """,
        )
        assert run_rule("RL107", path) == []

    def test_line_suppression_honoured(self, tmp_path):
        path = write(
            tmp_path,
            "src/repro/bench/report.py",
            'print("table")  # reglint: disable=RL107\n',
        )
        assert run_rule("RL107", path) == []


class TestPaperReference:
    def _refs(self, tmp_path):
        paper = write(tmp_path, "PAPER.md", PAPER)
        return load_paper_references(paper)

    def test_valid_citations_pass(self, tmp_path):
        refs = self._refs(tmp_path)
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            '"""Implements Eq. 2 and Lemma 3.1 (see Fig. 4)."""\n',
        )
        assert run_rule("RL201", path, paper_references=refs) == []

    def test_unknown_equation_flagged(self, tmp_path):
        refs = self._refs(tmp_path)
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            '"""Implements Eq. 9."""\n',
        )
        findings = run_rule("RL201", path, paper_references=refs)
        assert len(findings) == 1
        assert "Eq. 9" in findings[0].message

    def test_function_docstring_checked(self, tmp_path):
        refs = self._refs(tmp_path)
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            'def f() -> None:\n    """Uses Lemma 9.9."""\n',
        )
        findings = run_rule("RL201", path, paper_references=refs)
        assert len(findings) == 1
        assert "docstring of f" in findings[0].message

    def test_silent_without_paper(self, tmp_path):
        empty = load_paper_references(tmp_path / "MISSING.md")
        path = write(
            tmp_path,
            "src/repro/core/x.py",
            '"""Implements Eq. 999."""\n',
        )
        assert run_rule("RL201", path, paper_references=empty) == []
