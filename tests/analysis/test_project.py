"""Project-index (phase 1) construction tests.

Builds a synthetic mini-package in ``tmp_path`` — a lock-owning store,
an HTTP handler, a pool driver using ``functools.partial``, decorated
methods, re-exported names — and checks the symbol tables, call graph,
boundary map and lock inference that the RL3xx rules rely on.
"""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.analysis.framework import FileContext
from repro.analysis.project import (
    BACKGROUND_THREAD,
    HANDLER_THREAD,
    WORKER_PROCESS,
    ProjectIndex,
    module_name_for,
)


def build_index(tmp_path, files):
    for relative, text in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    contexts = {}
    for path in sorted(tmp_path.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        contexts[path] = FileContext(
            path=path, source=source, tree=ast.parse(source)
        )
    return ProjectIndex.build(contexts)


MINI_PACKAGE = {
    "pkg/__init__.py": """
        from pkg.store import Store
    """,
    "pkg/store.py": """
        import threading

        class Store:
            def __init__(self):
                self._lock = threading.Lock()
                self.items = {}

            def put(self, key, value):
                with self._lock:
                    self.items[key] = value

            def _drop_oldest(self):
                self.items.popitem()

            def trim(self):
                with self._lock:
                    self._drop_oldest()
    """,
    "pkg/decor.py": """
        import functools

        def logged(fn):
            @functools.wraps(fn)
            def wrapper(*args, **kwargs):
                return fn(*args, **kwargs)
            return wrapper

        class Engine:
            @logged
            def run(self):
                return self.helper()

            @property
            def size(self):
                return 0

            def helper(self):
                return 1
    """,
    "pkg/web.py": """
        from http.server import BaseHTTPRequestHandler

        from pkg import Store

        STORE = Store()

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self):
                self._answer()

            def _answer(self):
                STORE.put("seen", 1)
    """,
    "pkg/work.py": """
        import functools
        import threading
        from concurrent.futures import ProcessPoolExecutor

        _WORKER_STATE = None

        def _init(state):
            global _WORKER_STATE
            _WORKER_STATE = state

        def _mine(start):
            return (_WORKER_STATE, start)

        def drive(starts):
            pool = ProcessPoolExecutor(initializer=_init, initargs=(1,))
            futures = [
                pool.submit(functools.partial(_mine, start)) for start in starts
            ]
            return futures

        def spin():
            thread = threading.Thread(target=_loop)
            thread.start()

        def _loop():
            pass
    """,
}


@pytest.fixture
def index(tmp_path):
    return build_index(tmp_path, MINI_PACKAGE)


def test_module_name_walks_packages(tmp_path):
    build_index(tmp_path, MINI_PACKAGE)
    assert module_name_for(tmp_path / "pkg" / "store.py") == "pkg.store"
    assert module_name_for(tmp_path / "pkg" / "__init__.py") == "pkg"


def test_symbol_tables(index):
    store_mod = index.modules["pkg.store"]
    assert "Store" in store_mod.classes
    assert set(store_mod.classes["Store"].methods) == {
        "__init__",
        "put",
        "_drop_oldest",
        "trim",
    }
    work_mod = index.modules["pkg.work"]
    assert "_WORKER_STATE" in work_mod.globals
    assert "drive" in work_mod.functions


def test_class_attribute_inventory_and_locks(index):
    store = index.classes["pkg.store.Store"]
    assert store.lock_attrs == {"_lock"}
    assert "items" in store.attributes


def test_call_graph_self_dispatch(index):
    assert "pkg.store.Store._drop_oldest" in index.call_graph[
        "pkg.store.Store.trim"
    ]


def test_call_graph_decorated_methods(index):
    # Decorated methods are indexed and their self-calls resolve.
    assert "pkg.decor.Engine.run" in index.functions
    assert index.functions["pkg.decor.Engine.run"].decorators == ["logged"]
    assert "pkg.decor.Engine.helper" in index.call_graph["pkg.decor.Engine.run"]
    assert "pkg.decor.Engine.size" in index.functions  # @property too


def test_reexported_name_resolves(index):
    # pkg.web imports Store from pkg (a re-export of pkg.store.Store).
    assert (
        index.resolve_qualified("pkg.Store") == "pkg.store.Store"
    )
    web = index.modules["pkg.web"]
    assert index.resolve_qualified(web.resolve_local("Store")) == (
        "pkg.store.Store"
    )


def test_boundary_handler_threads(index):
    contexts = index.boundary.contexts
    assert HANDLER_THREAD in contexts["pkg.web.Handler.do_GET"]
    # Reachability: the private helper runs on the handler thread too.
    assert HANDLER_THREAD in contexts["pkg.web.Handler._answer"]
    # ...and so does the store method it calls.
    assert HANDLER_THREAD in contexts["pkg.store.Store.put"]


def test_boundary_worker_process_via_partial_submit(index):
    contexts = index.boundary.contexts
    # pool.submit(functools.partial(_mine, start)) unwraps to _mine.
    assert WORKER_PROCESS in contexts["pkg.work._mine"]
    # The ProcessPoolExecutor initializer is worker-side as well.
    assert WORKER_PROCESS in contexts["pkg.work._init"]
    submissions = index.boundary.submissions
    assert any(s.target == "pkg.work._mine" for s in submissions)
    assert any(s.target == "pkg.work._init" for s in submissions)


def test_boundary_background_thread(index):
    assert BACKGROUND_THREAD in index.boundary.contexts["pkg.work._loop"]


def test_lock_regions_and_interlocked_closure(index):
    put = index.functions["pkg.store.Store.put"]
    assert [lock for lock, _, _ in put.acquisitions] == [
        ("pkg.store.Store", "_lock")
    ]
    # _drop_oldest is called only from trim's locked region, so the
    # fixpoint proves the lock is always held inside it.
    drop = index.functions["pkg.store.Store._drop_oldest"]
    assert ("pkg.store.Store", "_lock") in drop.always_held


def test_guarded_attrs(index):
    store = index.classes["pkg.store.Store"]
    assert index.guarded_attrs(store, "_lock") == {"items"}


def test_nested_defs_are_indexed(tmp_path):
    index = build_index(
        tmp_path,
        {
            "solo.py": """
                from concurrent.futures import ProcessPoolExecutor

                def _boot():
                    pass

                def outer():
                    def make_pool():
                        return ProcessPoolExecutor(initializer=_boot)
                    return make_pool()
            """,
        },
    )
    assert "solo.outer.<locals>.make_pool" in index.functions
    assert WORKER_PROCESS in index.boundary.contexts["solo._boot"]


def test_init_only_helpers(tmp_path):
    index = build_index(
        tmp_path,
        {
            "svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.table = {}
                        self._load()

                    def _load(self):
                        self.table = {"a": 1}

                    def mutate(self):
                        with self._lock:
                            self.table["b"] = 2
            """,
        },
    )
    assert "svc.Service._load" in index.init_only
    assert "svc.Service.mutate" not in index.init_only
