"""Engine tests: registry, suppressions, reports, parse failures."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis import (
    FileContext,
    Report,
    Rule,
    Severity,
    Violation,
    all_rules,
    analyze_file,
    get_rule,
    register_rule,
)
from repro.analysis.framework import _parse_suppressions


def write(tmp_path, relative, text):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


class TestRegistry:
    def test_all_rules_sorted_by_id(self):
        ids = [cls.id for cls in all_rules()]
        assert ids == sorted(ids)
        assert "RL101" in ids and "RL201" in ids

    def test_get_rule_known(self):
        assert get_rule("RL101").id == "RL101"

    def test_get_rule_unknown_lists_known_ids(self):
        with pytest.raises(KeyError, match="RL101"):
            get_rule("RL999")

    def test_register_rejects_empty_id(self):
        with pytest.raises(ValueError, match="non-empty id"):

            @register_rule
            class NoId(Rule):
                pass

    def test_register_rejects_duplicate_id(self):
        with pytest.raises(ValueError, match="duplicate"):

            @register_rule
            class Duplicate(Rule):
                id = "RL101"


class TestSuppressions:
    def test_line_scope(self):
        parsed = _parse_suppressions("x = 1  # reglint: disable=RL101\n")
        assert parsed.by_line == {1: {"RL101"}}
        assert parsed.file_wide == set()

    def test_comma_separated_ids(self):
        parsed = _parse_suppressions("x = 1  # reglint: disable=RL101, RL104\n")
        assert parsed.by_line[1] == {"RL101", "RL104"}

    def test_file_scope(self):
        parsed = _parse_suppressions("# reglint: disable-file=RL101\nx = 1\n")
        assert parsed.file_wide == {"RL101"}

    def test_directive_inside_string_is_ignored(self):
        parsed = _parse_suppressions('x = "# reglint: disable=RL101"\n')
        assert parsed.by_line == {}
        assert parsed.file_wide == set()

    def _violation(self, line, rule_id="RL101"):
        return Violation(
            rule_id=rule_id,
            path=Path("x.py"),
            line=line,
            column=1,
            message="m",
            severity=Severity.ERROR,
        )

    def test_hides_matches_line_and_rule(self):
        parsed = _parse_suppressions("x = 1  # reglint: disable=RL101\n")
        assert parsed.hides(self._violation(1))
        assert not parsed.hides(self._violation(2))
        assert not parsed.hides(self._violation(1, rule_id="RL102"))

    def test_disable_all_on_line(self):
        parsed = _parse_suppressions("x = 1  # reglint: disable=all\n")
        assert parsed.hides(self._violation(1, rule_id="RL105"))


class TestAnalyzeFile:
    def test_syntax_error_becomes_rl000(self, tmp_path):
        bad = write(tmp_path, "src/repro/core/bad.py", "def broken(:\n")
        findings = analyze_file(bad, [cls() for cls in all_rules()])
        assert [f.rule_id for f in findings] == ["RL000"]
        assert findings[0].severity is Severity.ERROR

    def test_disable_file_all_skips_file(self, tmp_path):
        source = "# reglint: disable-file=all\nif x == 0.5:\n    pass\n"
        path = write(tmp_path, "src/repro/core/skipme.py", source)
        assert analyze_file(path, [get_rule("RL101")()]) == []

    def test_line_suppression_filters_finding(self, tmp_path):
        source = "if x == 0.5:  # reglint: disable=RL101\n    pass\n"
        path = write(tmp_path, "src/repro/core/ok.py", source)
        assert analyze_file(path, [get_rule("RL101")()]) == []


class TestReport:
    def _violation(self, severity):
        return Violation(
            rule_id="RL101",
            path=Path("x.py"),
            line=1,
            column=1,
            message="m",
            severity=severity,
        )

    def test_exit_code_clean(self):
        assert Report(violations=[], files_checked=3).exit_code == 0

    def test_info_does_not_gate(self):
        report = Report(
            violations=[self._violation(Severity.INFO)], files_checked=1
        )
        assert report.exit_code == 0

    def test_error_gates(self):
        report = Report(
            violations=[self._violation(Severity.ERROR)], files_checked=1
        )
        assert report.exit_code == 1
        assert "RL101" in report.render()

    def test_to_dict_roundtrips_fields(self):
        report = Report(
            violations=[self._violation(Severity.ERROR)], files_checked=1
        )
        payload = report.to_dict()
        assert payload["files_checked"] == 1
        assert payload["violations"][0]["rule"] == "RL101"
        assert payload["violations"][0]["severity"] == "error"


class TestFileContext:
    def _ctx(self, relative):
        return FileContext(
            path=Path(relative), source="", tree=ast.parse("")
        )

    def test_test_files_detected(self):
        assert self._ctx("tests/core/test_rwave.py").is_test_file()
        assert self._ctx("pkg/conftest.py").is_test_file()
        assert self._ctx("test_standalone.py").is_test_file()
        assert not self._ctx("src/repro/core/miner.py").is_test_file()

    def test_in_package_matches_fragment(self):
        ctx = self._ctx("src/repro/core/miner.py")
        assert ctx.in_package("repro/core/")
        assert not ctx.in_package("repro/eval/")
