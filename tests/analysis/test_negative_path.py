"""Negative path: the analyzer must still FAIL on a seeded defect.

The gate's value is its ability to go red.  These tests copy the
committed ``fixtures/racy_service`` package into a scratch directory
(the RL3xx rules deliberately skip modules under ``tests/``, so it
cannot be analyzed in place) and assert the whole-program run exits 1
with the expected finding.  CI runs the same copy-then-analyze dance
in its ``reglint-full`` job.
"""

from __future__ import annotations

import shutil
from pathlib import Path

from repro.analysis.__main__ import main

FIXTURE = Path(__file__).parent / "fixtures" / "racy_service"


def scratch_copy(tmp_path):
    target = tmp_path / "racy_service"
    shutil.copytree(FIXTURE, target)
    return target


def test_seeded_race_fails_the_gate(tmp_path, capsys):
    target = scratch_copy(tmp_path)
    code = main([str(target), "--select", "RL301", "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RL301" in out
    assert "evict" in out
    assert "entries" in out


def test_seeded_race_is_invisible_to_file_local_default(tmp_path):
    # Confirms the defect genuinely needs the whole-program phase —
    # i.e. the negative path exercises this PR's analyzer, not RL1xx.
    target = scratch_copy(tmp_path)
    assert main([str(target)]) == 0


def test_fixture_is_skipped_in_place():
    # Analyzed where it lives (under tests/), the rules skip it, so the
    # committed fixture cannot poison the real repo-tree gate.
    assert main([str(FIXTURE), "--select", "RL301", "--no-baseline"]) == 0
