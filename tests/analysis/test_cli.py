"""CLI exit-status and output contract tests."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.__main__ import main


def write(tmp_path, relative, text):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


@pytest.fixture
def clean_file(tmp_path):
    return write(
        tmp_path,
        "src/repro/core/clean.py",
        "def f(x: float) -> float:\n    return x + 1.0\n",
    )


@pytest.fixture
def dirty_file(tmp_path):
    # seeded violation: the pre-fix coherence.py float-equality form
    return write(
        tmp_path,
        "src/repro/core/dirty.py",
        """
        def f(denominator: float) -> bool:
            return denominator == 0.0
        """,
    )


def test_clean_tree_exits_zero(clean_file, capsys):
    assert main([str(clean_file), "--select", "RL101,RL102,RL105"]) == 0
    assert "clean" in capsys.readouterr().out


def test_seeded_violation_exits_nonzero(dirty_file, capsys):
    code = main([str(dirty_file), "--select", "RL101"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RL101" in out
    assert f"{dirty_file}:3:" in out  # file:line, editor-clickable


def test_disable_silences_the_rule(dirty_file):
    assert main([str(dirty_file), "--select", "RL101", "--disable", "RL101"]) == 0


def test_json_format(dirty_file, capsys):
    code = main([str(dirty_file), "--select", "RL101", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["files_checked"] == 1
    assert payload["violations"][0]["rule"] == "RL101"


def test_unknown_rule_id_is_usage_error(clean_file):
    with pytest.raises(SystemExit) as excinfo:
        main([str(clean_file), "--select", "RL999"])
    assert excinfo.value.code == 2


def test_missing_path_is_usage_error(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main([str(tmp_path / "does-not-exist")])
    assert excinfo.value.code == 2


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL101", "RL102", "RL103", "RL104", "RL105", "RL201"):
        assert rule_id in out


def test_repo_tree_is_clean():
    """Acceptance gate: reglint exits 0 on the shipped source tree."""
    import repro

    src_root = repro.__path__[0]
    assert main([src_root]) == 0


RACY = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self.items = {}

        def put(self, key, value):
            with self._lock:
                self.items[key] = value

        def forget(self, key):
            self.items.pop(key, None)
"""


def test_select_rl3xx_implies_whole_program(tmp_path, capsys):
    target = write(tmp_path, "store.py", RACY)
    code = main([str(target), "--select", "RL301"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RL301" in out


def test_default_run_stays_file_local(tmp_path):
    # Without --whole-program (or an RL3xx --select) the same defect
    # is invisible: the default rule set is file-local, so `make lint`
    # latency is unchanged.
    target = write(tmp_path, "store.py", RACY)
    assert main([str(target)]) == 0


def test_whole_program_flag_enables_project_rules(tmp_path, capsys):
    target = write(tmp_path, "store.py", RACY)
    code = main([str(target), "--whole-program", "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RL301" in out


def test_list_rules_shows_phase_tags(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL301", "RL302", "RL303", "RL310", "RL311",
                    "RL320", "RL321", "RL330"):
        assert rule_id in out
    assert "(whole-program)" in out
    assert "(file-local)" in out


def test_cache_speeds_second_run_and_detects_edits(tmp_path, capsys):
    target = write(
        tmp_path,
        "mod.py",
        """
        def f(denominator: float) -> bool:
            return denominator == 0.0
        """,
    )
    cache = tmp_path / "cache.json"
    assert main([str(target), "--select", "RL101", "--cache", str(cache)]) == 1
    assert cache.is_file()
    capsys.readouterr()
    # Warm run replays the cached finding without re-parsing.
    assert main([str(target), "--select", "RL101", "--cache", str(cache)]) == 1
    assert "RL101" in capsys.readouterr().out
    # An edit invalidates the digest and the fresh result is cached.
    target.write_text("def f(x: float) -> float:\n    return x + 1.0\n")
    assert main([str(target), "--select", "RL101", "--cache", str(cache)]) == 0


def test_corrupted_cache_is_tolerated(tmp_path):
    target = write(
        tmp_path,
        "mod.py",
        """
        def f(denominator: float) -> bool:
            return denominator == 0.0
        """,
    )
    cache = tmp_path / "cache.json"
    cache.write_text("{ not json", encoding="utf-8")
    assert main([str(target), "--select", "RL101", "--cache", str(cache)]) == 1


def test_repo_tree_is_clean_whole_program(monkeypatch):
    """Acceptance gate for this PR: the full RL3xx whole-program run
    over the shipped tree exits 0 with the committed baseline.

    Runs from the repo root with a relative path, exactly as CI does —
    baseline fingerprints are keyed on the path as analyzed, so the
    invocation shape matters.
    """
    import pathlib

    import repro

    repo_root = pathlib.Path(repro.__path__[0]).parents[1]
    assert (repo_root / "reglint-baseline.json").is_file()
    monkeypatch.chdir(repo_root)
    code = main(
        [
            "src/repro",
            "--select",
            "RL301,RL302,RL303,RL310,RL311,RL320,RL330",
            "--baseline",
            "reglint-baseline.json",
        ]
    )
    assert code == 0
