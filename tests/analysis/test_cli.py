"""CLI exit-status and output contract tests."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.__main__ import main


def write(tmp_path, relative, text):
    path = tmp_path / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


@pytest.fixture
def clean_file(tmp_path):
    return write(
        tmp_path,
        "src/repro/core/clean.py",
        "def f(x: float) -> float:\n    return x + 1.0\n",
    )


@pytest.fixture
def dirty_file(tmp_path):
    # seeded violation: the pre-fix coherence.py float-equality form
    return write(
        tmp_path,
        "src/repro/core/dirty.py",
        """
        def f(denominator: float) -> bool:
            return denominator == 0.0
        """,
    )


def test_clean_tree_exits_zero(clean_file, capsys):
    assert main([str(clean_file), "--select", "RL101,RL102,RL105"]) == 0
    assert "clean" in capsys.readouterr().out


def test_seeded_violation_exits_nonzero(dirty_file, capsys):
    code = main([str(dirty_file), "--select", "RL101"])
    out = capsys.readouterr().out
    assert code == 1
    assert "RL101" in out
    assert f"{dirty_file}:3:" in out  # file:line, editor-clickable


def test_disable_silences_the_rule(dirty_file):
    assert main([str(dirty_file), "--select", "RL101", "--disable", "RL101"]) == 0


def test_json_format(dirty_file, capsys):
    code = main([str(dirty_file), "--select", "RL101", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["files_checked"] == 1
    assert payload["violations"][0]["rule"] == "RL101"


def test_unknown_rule_id_is_usage_error(clean_file):
    with pytest.raises(SystemExit) as excinfo:
        main([str(clean_file), "--select", "RL999"])
    assert excinfo.value.code == 2


def test_missing_path_is_usage_error(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        main([str(tmp_path / "does-not-exist")])
    assert excinfo.value.code == 2


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL101", "RL102", "RL103", "RL104", "RL105", "RL201"):
        assert rule_id in out


def test_repo_tree_is_clean():
    """Acceptance gate: reglint exits 0 on the shipped source tree."""
    import repro

    src_root = repro.__path__[0]
    assert main([src_root]) == 0
