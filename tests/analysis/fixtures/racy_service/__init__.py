"""Deliberately defective scratch package for the reglint negative path.

This package is NOT importable production code: it exists so the CI
``reglint-full`` job (and ``test_negative_path.py``) can prove the
whole-program analyzer still *fails* on a seeded concurrency defect —
a green gate that can no longer go red is no gate at all.

Do not "fix" the race in ``store.py``; it is the test payload.
"""
