"""Seeded defect: ``evict`` mutates lock-guarded state without the lock."""

import threading


class RacyStore:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = {}

    def put(self, key, value):
        with self._lock:
            self.entries[key] = value

    def evict(self, key):
        # RL301 must fire here: ``entries`` is guarded (see put) but
        # this mutation runs outside the lock.
        self.entries.pop(key, None)
