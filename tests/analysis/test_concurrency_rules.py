"""RL30x whole-program concurrency rule tests.

Each test seeds a small package with (or without) a defect and runs the
whole-program phase through :func:`analyze_paths`, exactly as the CLI
does — so suppression carry-through and test-file scoping are covered
by the same path production uses.
"""

from __future__ import annotations

import textwrap

from repro.analysis.concurrency import (
    BlockingCallUnderLockRule,
    LockOrderInversionRule,
    UnlockedSharedMutationRule,
)
from repro.analysis.framework import analyze_paths


def write_tree(tmp_path, files):
    for relative, text in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return tmp_path


def run_rules(tmp_path, *rules):
    report = analyze_paths([tmp_path], list(rules))
    return report.violations


RACY_STORE = """
    import threading

    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self.items = {}
            self.count = 0

        def put(self, key, value):
            with self._lock:
                self.items[key] = value

        def forget(self, key):
            self.items.pop(key, None)

        def tally(self):
            self.count += 1

        def locked_tally(self):
            with self._lock:
                self.count += 1
"""


def test_rl301_flags_unlocked_mutations(tmp_path):
    write_tree(tmp_path, {"store.py": RACY_STORE})
    violations = run_rules(tmp_path, UnlockedSharedMutationRule())
    messages = [v.message for v in violations]
    # forget() mutates items (guarded via put) without the lock.
    assert any("items" in m and "forget" in m for m in messages)
    # tally() mutates count (guarded via locked_tally) without the lock.
    assert any("count" in m and "tally()" in m for m in messages)
    assert all(v.rule_id == "RL301" for v in violations)


def test_rl301_clean_when_all_mutations_locked(tmp_path):
    write_tree(
        tmp_path,
        {
            "store.py": """
                import threading

                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.items = {}

                    def put(self, key, value):
                        with self._lock:
                            self.items[key] = value

                    def drop(self, key):
                        with self._lock:
                            self.items.pop(key, None)
            """,
        },
    )
    assert run_rules(tmp_path, UnlockedSharedMutationRule()) == []


def test_rl301_exempts_interlocked_helper(tmp_path):
    write_tree(
        tmp_path,
        {
            "store.py": """
                import threading

                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.items = {}

                    def put(self, key, value):
                        with self._lock:
                            self.items[key] = value
                            self._trim()

                    def _trim(self):
                        while len(self.items) > 8:
                            self.items.popitem()
            """,
        },
    )
    # _trim mutates items without a lexical lock, but every call site
    # holds the lock — the fixpoint must prove it safe.
    assert run_rules(tmp_path, UnlockedSharedMutationRule()) == []


def test_rl301_exempts_self_synchronizing_members(tmp_path):
    write_tree(
        tmp_path,
        {
            "inner.py": """
                import threading

                class Inner:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.data = {}

                    def update(self, key, value):
                        with self._lock:
                            self.data[key] = value
            """,
            "outer.py": """
                import queue
                import threading

                from inner import Inner

                class Outer:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.store = Inner()
                        self.pending = queue.Queue()
                        self.jobs = {}

                    def locked_use(self):
                        with self._lock:
                            self.jobs["x"] = 1
                            self.store.update("a", 1)
                            self.pending.put(1)

                    def unlocked_use(self):
                        # Inner locks internally; Queue is thread-safe.
                        self.store.update("b", 2)
                        self.pending.put(2)
            """,
        },
    )
    assert run_rules(tmp_path, UnlockedSharedMutationRule()) == []


def test_rl301_suppression_carried_through_project_phase(tmp_path):
    suppressed = RACY_STORE.replace(
        "self.items.pop(key, None)",
        "self.items.pop(key, None)  # reglint: disable=RL301",
    )
    write_tree(tmp_path, {"store.py": suppressed})
    violations = run_rules(tmp_path, UnlockedSharedMutationRule())
    assert not any("forget" in v.message for v in violations)
    assert any("tally()" in v.message for v in violations)  # still live


def test_rl302_flags_abba_ordering(tmp_path):
    write_tree(
        tmp_path,
        {
            "locks.py": """
                import threading

                lock_a = threading.Lock()
                lock_b = threading.Lock()

                def forward():
                    with lock_a:
                        with lock_b:
                            pass

                def backward():
                    with lock_b:
                        with lock_a:
                            pass
            """,
        },
    )
    violations = run_rules(tmp_path, LockOrderInversionRule())
    assert violations
    assert all(v.rule_id == "RL302" for v in violations)
    assert "ABBA" in violations[0].message


def test_rl302_consistent_ordering_is_clean(tmp_path):
    write_tree(
        tmp_path,
        {
            "locks.py": """
                import threading

                lock_a = threading.Lock()
                lock_b = threading.Lock()

                def one():
                    with lock_a:
                        with lock_b:
                            pass

                def two():
                    with lock_a:
                        with lock_b:
                            pass
            """,
        },
    )
    assert run_rules(tmp_path, LockOrderInversionRule()) == []


def test_rl303_flags_sleep_and_open_under_lock(tmp_path):
    write_tree(
        tmp_path,
        {
            "svc.py": """
                import threading
                import time

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def slow(self):
                        with self._lock:
                            time.sleep(0.5)

                    def log(self, text):
                        with self._lock:
                            handle = open("log.txt", "a")
                            handle.write(text)
                            handle.close()
            """,
        },
    )
    violations = run_rules(tmp_path, BlockingCallUnderLockRule())
    assert {v.rule_id for v in violations} == {"RL303"}
    assert any("time.sleep" in v.message for v in violations)
    assert any("open()" in v.message for v in violations)


def test_rl303_one_hop_propagation(tmp_path):
    write_tree(
        tmp_path,
        {
            "svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def _persist(self, path, data):
                        path.write_text(data)

                    def save(self, path, data):
                        with self._lock:
                            self._persist(path, data)
            """,
        },
    )
    violations = run_rules(tmp_path, BlockingCallUnderLockRule())
    assert len(violations) == 1
    assert "_persist" in violations[0].message
    assert "blocking I/O" in violations[0].message


def test_rl303_string_methods_do_not_trip(tmp_path):
    write_tree(
        tmp_path,
        {
            "svc.py": """
                import threading

                class Service:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def render(self, parts, name):
                        with self._lock:
                            text = ", ".join(parts)
                            return text + name.replace("_", "-")
            """,
        },
    )
    assert run_rules(tmp_path, BlockingCallUnderLockRule()) == []
