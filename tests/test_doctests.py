"""Run the doctests embedded in module and function docstrings.

Docstring examples are part of the public documentation; this module
keeps them honest.  Modules are resolved with importlib because several
re-export functions whose names shadow the submodule attribute (e.g.
``repro.core.regulation`` the function vs. the module).
"""

from __future__ import annotations

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro",
    "repro.core.miner",
    "repro.core.params",
    "repro.core.regulation",
    "repro.core.thresholds",
    "repro.datasets.running_example",
    "repro.datasets.synthetic",
    "repro.experiments",
    "repro.matrix.expression",
    "repro.matrix.summary",
]


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0
    # modules listed here are expected to actually contain examples
    assert result.attempted > 0, f"{module_name} has no doctests"
