"""Keep the example scripts green: run each end to end.

Examples are executed in-process (imported as modules and their ``main``
called) with stdout captured, so failures surface as ordinary test
failures with tracebacks.  The yeast example runs on its reduced default
shape and stays within a few seconds.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = [
    "quickstart.py",
    "synthetic_recovery.py",
    "negative_correlation.py",
    "custom_thresholds.py",
    "enumeration_trace.py",
    "yeast_go_analysis.py",
]


def run_example(name: str) -> str:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    # examples read sys.argv; give them a clean one
    old_argv = sys.argv
    sys.argv = [str(path)]
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.argv = old_argv
    return name


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} printed nothing"


def test_quickstart_output_pins_paper_numbers(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "c7 <- c9 <- c5 <- c1 <- c3" in out
    assert "s1 = +2.50, s2 = -5.00" in out
    assert "s1 = -2.50, s2 = +35.00" in out


def test_negative_correlation_story(capsys):
    run_example("negative_correlation.py")
    out = capsys.readouterr().out
    assert "groups all seven patterns: True" in out
    assert "g2 correctly excluded" in out


def test_reproduce_all_script(tmp_path, capsys):
    """The one-command reproduction script writes a complete report."""
    spec_path = EXAMPLES_DIR.parent / "scripts" / "reproduce_all.py"
    spec = importlib.util.spec_from_file_location("reproduce_all", spec_path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    out = tmp_path / "REPORT.md"
    assert module.main(["--scale", "quick", "--out", str(out)]) == 0
    report = out.read_text()
    for heading in ("Figure 1", "Figure 2", "Figure 4", "Figure 7",
                    "Figure 8", "Table 2"):
        assert heading in report
    assert "reg-cluster (shifting-and-scaling)" in report
