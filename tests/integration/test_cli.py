"""Integration tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.datasets.running_example import load_running_example
from repro.matrix.io import save_expression_matrix


@pytest.fixture
def example_file(tmp_path):
    path = tmp_path / "running.tsv"
    save_expression_matrix(load_running_example(), path)
    return str(path)


class TestMine:
    def test_mine_running_example(self, example_file, capsys):
        code = main(
            [
                "mine", example_file,
                "--min-genes", "3",
                "--min-conditions", "5",
                "--gamma", "0.15",
                "--epsilon", "0.1",
                "--stats",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1 reg-cluster(s)" in out
        assert "c7 <- c9 <- c5 <- c1 <- c3" in out
        assert "nodes_expanded" in out

    def test_mine_missing_file(self, capsys):
        code = main(
            [
                "mine", "/nonexistent.tsv",
                "--min-genes", "3",
                "--min-conditions", "5",
                "--gamma", "0.15",
                "--epsilon", "0.1",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_mine_bad_gamma(self, example_file, capsys):
        code = main(
            [
                "mine", example_file,
                "--min-genes", "3",
                "--min-conditions", "5",
                "--gamma", "7",
                "--epsilon", "0.1",
            ]
        )
        assert code == 2


class TestUpfrontParameterValidation:
    """Bad bounds fail as usage errors *before* any matrix I/O."""

    def test_bad_gamma_rejected_before_matrix_load(self, capsys):
        code = main(
            [
                "mine", "/nonexistent.tsv",
                "--min-genes", "3",
                "--min-conditions", "5",
                "--gamma", "7",
                "--epsilon", "0.1",
            ]
        )
        err = capsys.readouterr().err
        assert code == 2
        # The parameter error fires, not the missing-file error.
        assert "gamma" in err
        assert "usage:" in err
        assert "No such file" not in err

    def test_bad_epsilon_rejected(self, example_file, capsys):
        code = main(
            [
                "mine", example_file,
                "--min-genes", "3",
                "--min-conditions", "5",
                "--gamma", "0.15",
                "--epsilon", "-1",
            ]
        )
        assert code == 2
        assert "epsilon" in capsys.readouterr().err

    def test_bad_min_conditions_rejected(self, example_file, capsys):
        code = main(
            [
                "mine", example_file,
                "--min-genes", "3",
                "--min-conditions", "1",
                "--gamma", "0.15",
                "--epsilon", "0.1",
            ]
        )
        assert code == 2
        assert "min_conditions" in capsys.readouterr().err

    def test_bad_max_clusters_rejected(self, example_file, capsys):
        code = main(
            [
                "mine", example_file,
                "--min-genes", "3",
                "--min-conditions", "5",
                "--gamma", "0.15",
                "--epsilon", "0.1",
                "--max-clusters", "0",
            ]
        )
        assert code == 2
        assert "max_clusters" in capsys.readouterr().err

    def test_submit_validates_before_contacting_server(self, capsys):
        code = main(
            [
                "submit", "/nonexistent.tsv",
                "--url", "http://127.0.0.1:1",
                "--min-genes", "0",
                "--min-conditions", "5",
                "--gamma", "0.15",
                "--epsilon", "0.1",
            ]
        )
        assert code == 2
        assert "min_genes" in capsys.readouterr().err


class TestGenerate:
    def test_generate_synthetic(self, tmp_path, capsys):
        out_path = tmp_path / "syn.tsv"
        code = main(
            [
                "generate", "synthetic",
                "--out", str(out_path),
                "--genes", "50",
                "--conditions", "10",
                "--clusters", "1",
            ]
        )
        assert code == 0
        assert out_path.exists()
        assert "embedded clusters" in capsys.readouterr().out

    def test_generate_yeast_writes_full_shape(self, tmp_path, capsys):
        out_path = tmp_path / "yeast.tsv"
        code = main(["generate", "yeast", "--out", str(out_path)])
        assert code == 0
        header, first, *rest = out_path.read_text().splitlines()
        assert len(header.split("\t")) == 18  # corner + 17 conditions
        assert len(rest) + 1 == 2884


class TestRWave:
    def test_rwave_by_name(self, example_file, capsys):
        code = main(
            ["rwave", example_file, "--gene", "g1", "--gamma", "0.15"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "threshold 4.5" in out
        assert "c7" in out

    def test_rwave_by_index(self, example_file, capsys):
        code = main(["rwave", example_file, "--gene", "2", "--gamma", "0.15"])
        assert code == 0
        assert "threshold 1.8" in capsys.readouterr().out

    def test_rwave_unknown_gene(self, example_file, capsys):
        code = main(
            ["rwave", example_file, "--gene", "gX", "--gamma", "0.15"]
        )
        assert code == 2


class TestSweep:
    def test_small_sweep(self, capsys):
        code = main(
            [
                "sweep", "n_genes", "40", "60",
                "--genes", "40",
                "--conditions", "8",
                "--clusters", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "runtime vs n_genes" in out
        assert "40" in out and "60" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestValidateAndProfile:
    @pytest.fixture
    def mined_files(self, example_file, tmp_path):
        result_path = tmp_path / "result.json"
        code = main(
            [
                "mine", example_file,
                "--min-genes", "3",
                "--min-conditions", "5",
                "--gamma", "0.15",
                "--epsilon", "0.1",
                "--output", str(result_path),
            ]
        )
        assert code == 0
        return example_file, str(result_path)

    def test_validate_clean_result(self, mined_files, capsys):
        matrix_path, result_path = mined_files
        code = main(["validate", matrix_path, result_path])
        assert code == 0
        assert "1/1 clusters valid" in capsys.readouterr().out

    def test_validate_detects_corruption(self, mined_files, tmp_path, capsys):
        import json

        matrix_path, result_path = mined_files
        with open(result_path) as handle:
            payload = json.load(handle)
        # swap a p-member for the n-member: the orientation breaks
        payload["clusters"][0]["p_members"] = ["g2"]
        payload["clusters"][0]["n_members"] = ["g1", "g3"]
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text(json.dumps(payload))
        code = main(["validate", matrix_path, str(corrupt)])
        out = capsys.readouterr().out
        assert code == 1
        assert "INVALID" in out

    def test_profile_renders(self, mined_files, capsys):
        matrix_path, result_path = mined_files
        code = main(["profile", matrix_path, result_path, "--index", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "*" in out and "o" in out
        assert "p-members (*/-): 2" in out

    def test_profile_index_out_of_range(self, mined_files, capsys):
        matrix_path, result_path = mined_files
        code = main(["profile", matrix_path, result_path, "--index", "9"])
        assert code == 2
        assert "out of range" in capsys.readouterr().err


class TestThresholdStrategyOption:
    def test_alternative_strategy_runs(self, example_file, capsys):
        code = main(
            [
                "mine", example_file,
                "--min-genes", "3",
                "--min-conditions", "5",
                "--gamma", "0.15",
                "--epsilon", "0.1",
                "--threshold-strategy", "normalized_std",
            ]
        )
        assert code == 0
        assert "reg-cluster(s)" in capsys.readouterr().out

    def test_unknown_strategy_fails_cleanly(self, example_file, capsys):
        code = main(
            [
                "mine", example_file,
                "--min-genes", "3",
                "--min-conditions", "5",
                "--gamma", "0.15",
                "--epsilon", "0.1",
                "--threshold-strategy", "bogus",
            ]
        )
        assert code == 2
        assert "unknown threshold" in capsys.readouterr().err


class TestExperimentSubcommand:
    def test_fig1(self, capsys):
        assert main(["experiment", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "reg-cluster (shifting-and-scaling)" in out

    def test_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "g2=n" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        assert "tendency" in capsys.readouterr().out

    def test_describe(self, example_file, capsys):
        assert main(["describe", example_file, "--gamma", "0.15"]) == 0
        out = capsys.readouterr().out
        assert "3 x 10" in out
        assert "median regulation threshold" in out
        assert "sha256 digest" in out


class TestServiceSubcommands:
    @pytest.fixture
    def daemon(self, tmp_path):
        """An in-process daemon; yields its base URL."""
        import threading

        from repro.service import MiningService, serve

        service = MiningService(tmp_path / "store")
        server = serve(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        service.start()
        host, port = server.server_address[0], server.server_address[1]
        yield f"http://{host}:{port}"
        service.stop()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_submit_wait_and_status(self, daemon, example_file, tmp_path,
                                    capsys):
        result_path = tmp_path / "service-result.json"
        code = main(
            [
                "submit", example_file,
                "--url", daemon,
                "--min-genes", "3",
                "--min-conditions", "5",
                "--gamma", "0.15",
                "--epsilon", "0.1",
                "--wait",
                "--output", str(result_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "done" in out
        assert "1 reg-cluster(s)" in out
        assert result_path.exists()

        import json

        payload = json.loads(result_path.read_text(encoding="utf-8"))
        assert payload["format"] == "reg-cluster/v1"
        assert len(payload["clusters"]) == 1

        assert main(["status", "--url", daemon]) == 0
        listing = capsys.readouterr().out
        assert "job-" in listing and "done" in listing

        job_id = listing.split()[0]
        assert main(["status", job_id, "--url", daemon]) == 0
        detail = capsys.readouterr().out
        assert f"job_id: {job_id}" in detail
        assert "state: done" in detail
        assert "progress.nodes_expanded" in detail

    def test_status_stats_prints_statistics(self, daemon, example_file,
                                            capsys):
        assert main(
            [
                "submit", example_file,
                "--url", daemon,
                "--min-genes", "3",
                "--min-conditions", "5",
                "--gamma", "0.15",
                "--epsilon", "0.1",
                "--wait",
            ]
        ) == 0
        listing = capsys.readouterr().out
        job_id = next(
            token for token in listing.split() if token.startswith("job-")
        )
        assert main(["status", job_id, "--url", daemon, "--stats"]) == 0
        detail = capsys.readouterr().out
        assert "statistics.nodes_expanded: 17" in detail
        assert "statistics.clusters_emitted: 1" in detail

    def test_status_without_stats_omits_statistics(self, daemon,
                                                   example_file, capsys):
        assert main(
            [
                "submit", example_file,
                "--url", daemon,
                "--min-genes", "3",
                "--min-conditions", "5",
                "--gamma", "0.15",
                "--epsilon", "0.1",
                "--wait",
            ]
        ) == 0
        listing = capsys.readouterr().out
        job_id = next(
            token for token in listing.split() if token.startswith("job-")
        )
        assert main(["status", job_id, "--url", daemon]) == 0
        assert "statistics." not in capsys.readouterr().out

    def test_status_unknown_job(self, daemon, capsys):
        code = main(["status", "job-" + "0" * 16, "--url", daemon])
        assert code == 2
        assert "unknown job" in capsys.readouterr().err

    def test_submit_unreachable_daemon(self, example_file, capsys):
        code = main(
            [
                "submit", example_file,
                "--url", "http://127.0.0.1:1",
                "--min-genes", "3",
                "--min-conditions", "5",
                "--gamma", "0.15",
                "--epsilon", "0.1",
            ]
        )
        assert code == 2


class TestTracedMine:
    def _mine(self, example_file, extra):
        return main(
            [
                "mine", example_file,
                "--min-genes", "3",
                "--min-conditions", "5",
                "--gamma", "0.15",
                "--epsilon", "0.1",
                *extra,
            ]
        )

    def test_workers_matches_single_process(self, example_file, capsys):
        assert self._mine(example_file, []) == 0
        direct = capsys.readouterr().out
        assert self._mine(example_file, ["--workers", "4"]) == 0
        sharded = capsys.readouterr().out
        assert direct == sharded

    def test_trace_writes_spans_and_summary_renders(
        self, example_file, tmp_path, capsys
    ):
        trace_path = tmp_path / "mine.trace.jsonl"
        assert self._mine(
            example_file, ["--workers", "2", "--trace", str(trace_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "1 reg-cluster(s)" in out
        assert f"trace written to {trace_path}" in out

        assert main(["trace", "summary", str(trace_path)]) == 0
        summary = capsys.readouterr().out
        assert "root: job" in summary
        assert "phases (summed over shards)" in summary
        # One row per start condition of the running example.
        assert "    9  " in summary

    def test_zero_workers_rejected(self, example_file, capsys):
        assert self._mine(example_file, ["--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().err


class TestTraceSummaryCommand:
    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(["trace", "summary", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_trace_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["trace", "summary", str(path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "no spans" in err
