"""Integration tests spanning the whole pipeline.

generator -> miner -> validator -> matching -> GO enrichment, on small
instances so they run in seconds.
"""

from __future__ import annotations

import pytest

from repro.core.miner import MiningParameters, RegClusterMiner
from repro.core.validate import validation_errors
from repro.datasets.synthetic import make_synthetic_dataset
from repro.datasets.yeast import make_yeast_surrogate
from repro.eval.go.annotation import annotate_surrogate
from repro.eval.go.enrichment import top_terms_by_namespace
from repro.eval.match import best_match, match_report
from repro.eval.overlap import overlap_summary, select_non_overlapping
from repro.matrix.io import load_expression_matrix, save_expression_matrix


class TestSyntheticPipeline:
    def test_generate_mine_validate_match(self):
        data = make_synthetic_dataset(
            n_genes=200,
            n_conditions=16,
            n_clusters=3,
            seed=21,
            gene_fraction=0.05,
            dimensionality_jitter=0,
        )
        params = MiningParameters(
            min_genes=8, min_conditions=6, gamma=0.1, epsilon=0.01
        )
        result = RegClusterMiner(data.matrix, params).mine()

        # every mined cluster satisfies Definition 3.2 independently
        for cluster in result.clusters:
            assert validation_errors(data.matrix, cluster, params) == []

        # every embedded cluster is recovered essentially exactly
        report = match_report(result.clusters, data.embedded, threshold=0.95)
        assert report.n_recovered == data.n_embedded

    def test_round_trip_through_disk(self, tmp_path):
        data = make_synthetic_dataset(
            n_genes=100, n_conditions=12, n_clusters=2, seed=4,
            gene_fraction=0.06, dimensionality_jitter=0,
        )
        path = tmp_path / "data.tsv"
        save_expression_matrix(data.matrix, path)
        loaded = load_expression_matrix(path)
        params = MiningParameters(
            min_genes=5, min_conditions=6, gamma=0.1, epsilon=0.05
        )
        direct = RegClusterMiner(data.matrix, params).mine().clusters
        via_disk = RegClusterMiner(loaded, params).mine().clusters
        assert direct == via_disk


class TestYeastPipeline:
    @pytest.fixture(scope="class")
    def mined(self):
        surrogate = make_yeast_surrogate(shape=(500, 17), seed=13)
        params = MiningParameters(
            min_genes=20, min_conditions=6, gamma=0.05, epsilon=1.0
        )
        result = RegClusterMiner(surrogate.matrix, params).mine()
        return surrogate, params, result

    def test_modules_recovered(self, mined):
        surrogate, __, result = mined
        for truth in surrogate.embedded:
            __, score = best_match(truth, result.clusters)
            assert score > 0.6

    def test_clusters_valid_and_mixed_sign(self, mined):
        surrogate, params, result = mined
        assert len(result) >= len(surrogate.modules)
        for cluster in result.clusters:
            assert validation_errors(surrogate.matrix, cluster, params) == []
        assert any(c.n_members for c in result.clusters)

    def test_overlap_statistics_and_selection(self, mined):
        __, __, result = mined
        summary = overlap_summary(result.clusters)
        assert 0.0 <= summary.min_overlap <= summary.max_overlap <= 1.0
        picks = select_non_overlapping(result.clusters, limit=3)
        assert 1 <= len(picks) <= 3
        for a in picks:
            for b in picks:
                if a is not b:
                    assert a.overlap_fraction(b) == 0.0

    def test_go_enrichment_of_mined_clusters(self, mined):
        surrogate, __, result = mined
        corpus = annotate_surrogate(surrogate, seed=3)
        module = surrogate.modules[0]
        truth = surrogate.module_cluster(module.name)
        found, score = best_match(truth, result.clusters)
        assert found is not None and score > 0.6
        best = top_terms_by_namespace(found, corpus)
        assert best["biological_process"] is not None
        assert best["biological_process"].p_value < 1e-6
