"""Unit tests for the Figures 1/2/4 experiment drivers."""

from __future__ import annotations

import numpy as np

from repro.experiments.model_comparison import (
    figure1_patterns,
    run_figure1,
    run_figure2,
    run_figure4,
)


class TestFigure1:
    def test_pattern_relationships(self):
        """P1 = P2-5 = P3-15 = P4 = P5/1.5 = P6/3 (the caption's claim)."""
        m = figure1_patterns()
        p = {name: m.row(name) for name in m.gene_names}
        assert np.allclose(p["P1"], p["P2"] - 5.0)
        assert np.allclose(p["P1"], p["P3"] - 15.0)
        assert np.allclose(p["P1"], p["P4"])
        assert np.allclose(p["P1"], p["P5"] / 1.5)
        assert np.allclose(p["P1"], p["P6"] / 3.0)

    def test_only_reg_cluster_groups_all(self):
        result = run_figure1()
        assert result.reg_cluster_groups_all
        assert not result.shifting_groups_all
        assert not result.scaling_groups_all

    def test_subfamilies_recognized(self):
        result = run_figure1()
        assert result.shifting_groups_subfamily
        assert result.scaling_groups_subfamily

    def test_render(self):
        text = run_figure1().render()
        assert "reg-cluster" in text
        assert "True" in text and "False" in text


class TestFigure2:
    def test_memberships(self):
        result = run_figure2()
        assert result.memberships == {"g1": "p", "g2": "n", "g3": "p"}

    def test_baselines_reject(self):
        result = run_figure2()
        assert not result.shifting_accepts
        assert not result.scaling_accepts

    def test_render(self):
        assert "g2=n" in run_figure2().render()


class TestFigure4:
    def test_tendency_false_positive(self):
        assert run_figure4().tendency_groups_all

    def test_reg_cluster_excludes_outlier(self):
        result = run_figure4()
        gene_sets = [set(g) for g in result.reg_cluster_gene_sets]
        assert {0, 2} in gene_sets
        assert all(1 not in genes for genes in gene_sets)

    def test_pattern_models_find_nothing(self):
        assert not run_figure4().pattern_models_relate_g1_g3

    def test_render(self):
        text = run_figure4().render()
        assert "tendency" in text
        assert "[[1, 3]]" in text
