"""Unit tests for the Figure 7 / Figure 8 / Table 2 drivers (quick scale)."""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.experiments.fig7 import run_figure7
from repro.experiments.fig8 import (
    PAPER_YEAST_PARAMETERS,
    count_crossovers,
    run_figure8,
)
from repro.experiments.table2 import run_table2

import numpy as np


@pytest.fixture(scope="module")
def figure8_quick():
    return run_figure8(shape=(500, 17))


class TestFigure7Driver:
    def test_quick_scale_produces_three_sweeps(self):
        tiny = SyntheticConfig(n_genes=120, n_conditions=10, n_clusters=2)
        result = run_figure7(scale="quick", base_config=tiny)
        assert set(result.sweeps) == {
            "n_genes", "n_conditions", "n_clusters",
        }
        for sweep in result.sweeps.values():
            assert all(p.seconds > 0 for p in sweep.points)

    def test_growth_ratio(self):
        tiny = SyntheticConfig(n_genes=120, n_conditions=10, n_clusters=2)
        result = run_figure7(scale="quick", base_config=tiny)
        assert result.growth_ratio("n_genes") > 0

    def test_render(self):
        tiny = SyntheticConfig(n_genes=100, n_conditions=10, n_clusters=1)
        text = run_figure7(scale="quick", base_config=tiny).render()
        assert "runtime vs n_genes" in text
        assert "expected" in text

    def test_unknown_scale(self):
        with pytest.raises(ValueError, match="scale"):
            run_figure7(scale="huge")


class TestFigure8Driver:
    def test_paper_parameters(self):
        assert PAPER_YEAST_PARAMETERS.min_genes == 20
        assert PAPER_YEAST_PARAMETERS.gamma == 0.05

    def test_quick_run_structure(self, figure8_quick):
        run = figure8_quick
        assert run.n_clusters >= len(run.surrogate.modules)
        assert len(run.reported) == 3
        for entry in run.reported:
            assert entry.cluster.n_members  # negative correlation
            assert entry.crossovers > 0
            assert not entry.scaling_model_accepts

    def test_reported_clusters_disjoint(self, figure8_quick):
        reported = [e.cluster for e in figure8_quick.reported]
        for a in reported:
            for b in reported:
                if a is not b:
                    assert a.overlap_fraction(b) == 0.0

    def test_render(self, figure8_quick):
        text = figure8_quick.render()
        assert "paper: 21 clusters" in text
        assert "pScore/spread" in text

    def test_count_crossovers(self):
        crossing = np.array([[0.0, 2.0, 0.0], [1.0, 1.0, 1.0]])
        assert count_crossovers(crossing) == 2
        parallel = np.array([[0.0, 1.0, 2.0], [5.0, 6.0, 7.0]])
        assert count_crossovers(parallel) == 0


class TestTable2Driver:
    def test_rows_match_reported_modules(self, figure8_quick):
        result = run_table2(figure8_quick)
        names = [row.module_name for row in result.rows]
        assert names == [
            "dna_replication",
            "protein_biosynthesis",
            "cytoplasm_organization",
        ]
        for row in result.rows:
            assert row.match_jaccard > 0.5
            assert all(p < 1e-2 for p in row.p_values())

    def test_render_contains_paper_table(self, figure8_quick):
        text = run_table2(figure8_quick).render()
        assert "(paper) c1^2" in text
        assert "DNA replication" in text
        assert "measured" in text
