"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import MiningParameters
from repro.datasets.running_example import load_running_example
from repro.matrix.expression import ExpressionMatrix


@pytest.fixture
def running_example() -> ExpressionMatrix:
    """Table 1 of the paper (3 genes x 10 conditions)."""
    return load_running_example()


@pytest.fixture
def paper_params() -> MiningParameters:
    """The parameter setting of the paper's worked example (Figure 6)."""
    return MiningParameters(
        min_genes=3, min_conditions=5, gamma=0.15, epsilon=0.1
    )


@pytest.fixture
def tiny_matrix() -> ExpressionMatrix:
    """A deterministic 6x6 matrix with one planted affine family.

    Genes g1..g3 are affine transforms of one base profile on conditions
    c1..c4 (g3 negatively); g4..g6 are noise.
    """
    base = np.array([0.0, 2.0, 5.0, 9.0])
    rng = np.random.default_rng(123)
    values = rng.uniform(0.0, 10.0, size=(6, 6))
    values[0, :4] = base
    values[1, :4] = 2.0 * base + 1.0
    values[2, :4] = -1.5 * base + 20.0
    return ExpressionMatrix(values)
